"""Tests for the 22-benchmark catalog."""

import pytest

from repro.errors import SimulationError
from repro.workloads import catalog


class TestCompleteness:
    def test_twenty_two_evaluation_workloads(self):
        assert len(catalog.evaluation_set()) == 22
        assert len(catalog.names()) == 22

    def test_development_and_test_split(self):
        dev = catalog.development_set()
        test = catalog.test_set()
        assert {w.name for w in dev} == {"BT", "CG", "IS", "MD"}
        assert len(test) == 18
        assert not {w.name for w in dev} & {w.name for w in test}

    def test_paper_workload_names_present(self):
        expected = {
            "Applu", "Apsi", "Art", "BT", "Bwaves", "CG", "EP", "FMA-3D",
            "FT", "IS", "LU", "MD", "MG", "NPO", "PRH", "PRHO", "PRO",
            "PageRank", "Sort-Join", "SP", "Swim", "Wupwise",
        }
        assert set(catalog.names()) == expected

    def test_specials_present(self):
        assert catalog.get("equake").work_growth > 0
        assert catalog.get("NPO-1T").active_threads == 1

    def test_unknown_name_raises(self):
        with pytest.raises(SimulationError, match="known"):
            catalog.get("doom")

    def test_all_names_include_specials(self):
        names = catalog.all_names()
        assert "equake" in names and "NPO-1T" in names and "MD" in names


class TestCharacter:
    """Spot-check that specs encode the published workload characters."""

    def test_ep_is_embarrassingly_parallel(self):
        ep = catalog.get("EP")
        assert ep.parallel_fraction > 0.999
        assert ep.comm_fraction == 0.0
        assert ep.dram_bpi < 0.1

    def test_swim_is_bandwidth_bound(self):
        swim = catalog.get("Swim")
        assert swim.dram_bpi == max(w.dram_bpi for w in catalog.evaluation_set())

    def test_pagerank_is_communication_heavy(self):
        pr = catalog.get("PageRank")
        others = [w.comm_fraction for w in catalog.evaluation_set() if w.name != "Sort-Join"]
        assert pr.comm_fraction == max(others)

    def test_sort_join_is_bursty(self):
        sj = catalog.get("Sort-Join")
        assert sj.burst_duty == min(w.burst_duty for w in catalog.evaluation_set())

    def test_lu_is_lockstep(self):
        assert catalog.get("LU").load_balance <= 0.1

    def test_diversity_across_axes(self):
        """The set must span the behavioural space, not cluster."""
        specs = catalog.evaluation_set()
        assert max(w.dram_bpi for w in specs) > 10 * max(0.05, min(w.dram_bpi for w in specs))
        assert max(w.load_balance for w in specs) - min(w.load_balance for w in specs) > 0.6
        assert min(w.parallel_fraction for w in specs) < 0.97
        assert max(w.parallel_fraction for w in specs) > 0.999

    def test_equake_excluded_from_evaluation_set(self):
        assert "equake" not in catalog.names()
        assert all(w.work_growth == 0.0 for w in catalog.evaluation_set())
