"""Tests for the workload-spec data model."""

import pytest

from repro.errors import SimulationError
from repro.workloads.spec import MemoryPolicy, WorkloadSpec


def make_spec(**overrides):
    base = dict(name="w", work_ginstr=10.0, cpi=0.5)
    base.update(overrides)
    return WorkloadSpec(**base)


class TestMemoryPolicy:
    def test_default_is_interleave_active(self):
        assert make_spec().memory_policy.kind == "interleave_active"

    def test_bind_requires_nodes(self):
        with pytest.raises(SimulationError):
            MemoryPolicy(kind="bind")

    def test_bind_normalises_nodes(self):
        assert MemoryPolicy.bind(2, 0, 2).nodes == (0, 2)

    def test_non_bind_rejects_nodes(self):
        with pytest.raises(SimulationError):
            MemoryPolicy(kind="local", nodes=(0,))

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError):
            MemoryPolicy(kind="random")


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("work_ginstr", 0.0),
            ("cpi", 0.0),
            ("l1_bpi", -1.0),
            ("dram_bpi", -0.1),
            ("parallel_fraction", 1.0001),
            ("load_balance", -0.5),
            ("burst_duty", 0.0),
            ("burst_duty", 1.2),
            ("comm_fraction", -0.1),
            ("work_growth", -0.1),
            ("active_threads", 0),
        ],
    )
    def test_rejects_out_of_range(self, field, value):
        with pytest.raises(SimulationError):
            make_spec(**{field: value})

    def test_background_spec_allows_placeholder_work(self):
        spec = make_spec(background=True, work_ginstr=1.0)
        assert spec.background


class TestDerived:
    def test_ipc_demand(self):
        assert make_spec(cpi=0.25).ipc_demand == 4.0

    def test_bpi_vector_and_cache_lookup(self):
        spec = make_spec(l1_bpi=8.0, l2_bpi=4.0, l3_bpi=2.0, dram_bpi=1.0)
        assert spec.bpi_vector() == {"L1": 8.0, "L2": 4.0, "L3": 2.0, "DRAM": 1.0}
        assert spec.cache_bpi("L2") == 4.0
        with pytest.raises(SimulationError):
            spec.cache_bpi("L4")

    def test_n_active_caps_at_spec_limit(self):
        spec = make_spec(active_threads=2)
        assert spec.n_active(1) == 1
        assert spec.n_active(5) == 2
        with pytest.raises(SimulationError):
            spec.n_active(0)

    def test_total_work_grows_with_threads(self):
        spec = make_spec(work_growth=0.1)
        assert spec.total_work_ginstr(1) == pytest.approx(10.0)
        assert spec.total_work_ginstr(5) == pytest.approx(14.0)

    def test_with_replaces_fields(self):
        spec = make_spec().with_(cpi=1.0)
        assert spec.cpi == 1.0
        assert spec.name == "w"
