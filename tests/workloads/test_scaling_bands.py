"""Data-driven scaling-band regression for every evaluation workload.

Each of the 22 workloads has a stated speedup band at 36 one-per-core
threads of the X5-2 (relative to one thread).  The bands document the
intended behavioural spread of the catalog and freeze it: a parameter
edit that moves a workload out of its band fails here with a message
naming the band, not in some downstream experiment.
"""

import pytest

from repro.core.sweep import spread_placement
from repro.hardware import machines
from repro.sim.engine import Job, SimOptions, simulate
from repro.sim.noise import NO_NOISE
from repro.workloads import catalog

QUIET = SimOptions(noise=NO_NOISE)
X5 = machines.get("X5-2")

#: workload -> (min, max) measured speedup at 36 spread threads.
BANDS = {
    # compute-leaning NPB/OMP: near-linear up to the core count
    "EP": (25.0, 37.0),
    "MD": (22.0, 36.0),
    "BT": (18.0, 34.0),
    "Wupwise": (12.0, 28.0),
    "Apsi": (12.0, 30.0),
    "Applu": (10.0, 28.0),
    "LU": (10.0, 28.0),
    "SP": (8.0, 26.0),
    "Art": (8.0, 26.0),
    "FMA-3D": (7.0, 24.0),
    "FT": (5.0, 20.0),
    # bandwidth/communication-bound: early saturation
    "CG": (4.0, 16.0),
    "MG": (3.0, 12.0),
    "IS": (3.0, 12.0),
    "Bwaves": (3.0, 12.0),
    "Swim": (2.0, 10.0),
    # joins and graph: interconnect-gated
    "NPO": (2.0, 10.0),
    "PRH": (3.0, 14.0),
    "PRHO": (3.0, 14.0),
    "PRO": (3.0, 14.0),
    "Sort-Join": (3.0, 16.0),
    "PageRank": (2.0, 10.0),
}


def measured_speedup(name: str) -> float:
    spec = catalog.get(name)
    t1 = simulate(
        X5, [Job(spec, spread_placement(X5.topology, 1).hw_thread_ids)], QUIET
    ).job_results[0].elapsed_s
    t36 = simulate(
        X5, [Job(spec, spread_placement(X5.topology, 36).hw_thread_ids)], QUIET
    ).job_results[0].elapsed_s
    return t1 / t36


@pytest.mark.parametrize("name", catalog.names())
def test_workload_stays_in_its_band(name):
    lo, hi = BANDS[name]
    speedup = measured_speedup(name)
    assert lo <= speedup <= hi, (
        f"{name}: 36-thread speedup {speedup:.1f} outside its documented "
        f"band [{lo}, {hi}] — a catalog edit changed its character"
    )


def test_every_workload_has_a_band():
    assert set(BANDS) == set(catalog.names())
