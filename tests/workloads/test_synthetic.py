"""Tests for synthetic workload generation."""

import pytest

from repro.workloads.synthetic import (
    AXIS_RANGES,
    compute_bound_spec,
    memory_bound_spec,
    random_spec,
)


class TestRandomSpec:
    def test_reproducible(self):
        assert random_spec(7) == random_spec(7)

    def test_seeds_differ(self):
        assert random_spec(1) != random_spec(2)

    def test_within_ranges(self):
        for seed in range(30):
            spec = random_spec(seed)
            for axis, (lo, hi) in AXIS_RANGES.items():
                value = getattr(spec, axis)
                assert lo <= value <= hi, f"{axis} out of range for seed {seed}"

    def test_custom_name(self):
        assert random_spec(3, name="custom").name == "custom"


class TestExtremes:
    def test_compute_bound_touches_little_memory(self):
        spec = compute_bound_spec()
        assert spec.dram_bpi == 0.0
        assert spec.cpi < 0.5

    def test_memory_bound_is_dram_heavy(self):
        spec = memory_bound_spec()
        assert spec.dram_bpi >= 5.0
        assert spec.working_set_mib > 100
