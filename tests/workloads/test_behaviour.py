"""Behavioural regression tests: the catalog acts like its namesakes.

Each of the 22 workloads stands in for a published benchmark; these
tests pin the *observable* behaviour (through timed runs on the
simulated X5-2) to that benchmark's character, so catalog edits cannot
silently change what the evaluation measures.
"""

import pytest

from repro.core.sweep import packed_placement, spread_placement
from repro.hardware import machines
from repro.sim.engine import Job, SimOptions, simulate
from repro.sim.noise import NO_NOISE
from repro.workloads import catalog

QUIET = SimOptions(noise=NO_NOISE)
X5 = machines.get("X5-2")


def time_with(spec, placement):
    return simulate(X5, [Job(spec, placement.hw_thread_ids)], QUIET).job_results[0].elapsed_s


def speedup_at(spec, n):
    t1 = time_with(spec, spread_placement(X5.topology, 1))
    tn = time_with(spec, spread_placement(X5.topology, n))
    return t1 / tn


class TestScalingCharacter:
    def test_ep_is_near_linear_to_a_socket(self):
        """Embarrassingly parallel: ~18x on 18 cores."""
        assert speedup_at(catalog.get("EP"), 18) > 14.0

    def test_md_scales_far(self):
        """Figure 1: MD keeps gaining to large thread counts."""
        md = catalog.get("MD")
        assert speedup_at(md, 36) > 20.0

    def test_swim_saturates_early(self):
        """Bandwidth-bound: DRAM gates well below the core count."""
        swim = catalog.get("Swim")
        s8 = speedup_at(swim, 8)
        s36 = speedup_at(swim, 36)
        assert s36 < s8 * 2.0  # far from linear past saturation

    def test_memory_bound_set_saturates_below_compute_bound(self):
        for mem_name in ("Swim", "Bwaves", "NPO"):
            assert speedup_at(catalog.get(mem_name), 36) < speedup_at(
                catalog.get("EP"), 36
            )


class TestMemoryCharacter:
    @pytest.mark.parametrize("name", ["Swim", "Bwaves", "CG", "MG"])
    def test_memory_bound_workloads_load_dram_heavily(self, name):
        """A machine-wide spread pushes DRAM near its limit: these
        first-touch-local workloads are DRAM-bound, not link-bound."""
        spec = catalog.get(name)
        placement = spread_placement(X5.topology, 36)
        sim = simulate(X5, [Job(spec, placement.hw_thread_ids)], QUIET)
        dram_load = max(
            v for k, v in sim.resource_loads.items() if k[0] == "dram"
        )
        assert dram_load > 0.8 * X5.dram_gbs_per_node, name

    @pytest.mark.parametrize("name", ["NPO", "PageRank", "Sort-Join"])
    def test_shared_table_workloads_saturate_the_interconnect(self, name):
        """Joins over shared hash tables and graph traversals keep low
        NUMA locality: spread over sockets, the interconnect gates."""
        spec = catalog.get(name)
        placement = spread_placement(X5.topology, 36)
        sim = simulate(X5, [Job(spec, placement.hw_thread_ids)], QUIET)
        link_load = max(
            v for k, v in sim.resource_loads.items() if k[0] == "link"
        )
        assert link_load > 0.9 * X5.interconnect_gbs, name

    @pytest.mark.parametrize("name", ["EP", "MD"])
    def test_compute_bound_workloads_barely_touch_dram(self, name):
        spec = catalog.get(name)
        placement = spread_placement(X5.topology, 36)
        sim = simulate(X5, [Job(spec, placement.hw_thread_ids)], QUIET)
        dram_load = max(
            (v for k, v in sim.resource_loads.items() if k[0] == "dram"),
            default=0.0,
        )
        assert dram_load < 0.5 * X5.dram_gbs_per_node, name


class TestSmtCharacter:
    def test_sort_join_dislikes_smt(self):
        """The bursty AVX pipelines: packing two per core loses more
        than for a steady workload."""
        sj = catalog.get("Sort-Join")
        cg = catalog.get("CG")

        def smt_penalty(spec):
            spread = time_with(spec, spread_placement(X5.topology, 18))
            packed = time_with(spec, packed_placement(X5.topology, 18))
            return packed / spread

        assert smt_penalty(sj) > smt_penalty(cg)

    def test_md_gains_from_whole_machine_smt(self):
        """Figure 1's right edge: the full 72 threads still (slightly)
        beat 36 one-per-core for MD."""
        md = catalog.get("MD")
        t36 = time_with(md, spread_placement(X5.topology, 36))
        t72 = time_with(md, spread_placement(X5.topology, 72))
        assert t72 < t36


class TestSocketCharacter:
    @staticmethod
    def _spread_gain(spec):
        """Speedup from moving 18 one-per-core threads from one socket
        to both sockets (same core count, doubled memory system)."""
        one_socket_tids = tuple(
            X5.topology.core(c).hw_thread_ids[0] for c in X5.topology.socket(0).core_ids
        )
        from repro.core.placement import Placement

        t_one = simulate(
            X5, [Job(spec, one_socket_tids)], QUIET
        ).job_results[0].elapsed_s
        t_both = time_with(spec, spread_placement(X5.topology, 18))
        return t_one / t_both

    def test_pagerank_gains_less_from_spreading_than_local_workloads(self):
        """Graph analytics drags a shared graph across the interconnect:
        doubling the memory system buys less than it does for a
        first-touch-local workload like Swim."""
        assert self._spread_gain(catalog.get("PageRank")) < self._spread_gain(
            catalog.get("Swim")
        )

    def test_ep_is_socket_indifferent(self):
        ep = catalog.get("EP")
        spread = time_with(ep, spread_placement(X5.topology, 8))
        packed_cores = time_with(
            ep, spread_placement(X5.topology, 8)
        )
        assert spread == pytest.approx(packed_cores, rel=1e-9)


class TestSpecials:
    def test_equake_work_grows(self):
        """Figure 13's broken assumption: instructions rise with n."""
        equake = catalog.get("equake")
        placement = spread_placement(X5.topology, 16)
        sim = simulate(X5, [Job(equake, placement.hw_thread_ids)], QUIET)
        solo = simulate(
            X5, [Job(equake, spread_placement(X5.topology, 1).hw_thread_ids)], QUIET
        )
        assert (
            sim.job_results[0].counters.instructions_g
            > solo.job_results[0].counters.instructions_g * 1.2
        )

    def test_npo_1t_never_scales(self):
        npo1 = catalog.get("NPO-1T")
        assert speedup_at(npo1, 16) < 1.2

    def test_bt_small_staircase(self):
        bt = catalog.get("BT-small")
        t32 = time_with(bt, spread_placement(X5.topology, 32))
        t48 = time_with(bt, spread_placement(X5.topology, 48))
        assert t48 >= t32 * 0.95


class TestDevelopmentSetIsRepresentative:
    def test_dev_set_spans_memory_intensity(self):
        """BT, CG, IS, MD cover compute-bound to bandwidth-bound."""
        dev = {w.name: w for w in catalog.development_set()}
        assert dev["MD"].dram_bpi < 0.5  # compute
        assert dev["IS"].dram_bpi > 3.0  # bandwidth + comm
        assert dev["CG"].dram_bpi > 2.0  # memory
