"""Tests for benchmark-suite metadata."""

import pytest

from repro.errors import SimulationError
from repro.workloads import catalog, suites


class TestPartition:
    def test_suites_partition_the_evaluation_set(self):
        suites.verify_partition()  # raises on any mismatch

    def test_counts_match_the_paper(self):
        assert len(suites.workloads_in("NPB")) == 8
        assert len(suites.workloads_in("SPEC OMP")) == 8
        assert len(suites.workloads_in("hash joins")) == 5
        assert len(suites.workloads_in("graph analytics")) == 1


class TestLookups:
    def test_suite_of(self):
        assert suites.suite_of("CG") == "NPB"
        assert suites.suite_of("MD") == "SPEC OMP"
        assert suites.suite_of("Sort-Join") == "hash joins"
        assert suites.suite_of("PageRank") == "graph analytics"

    def test_unknown_workload(self):
        with pytest.raises(SimulationError):
            suites.suite_of("doom")

    def test_unknown_suite(self):
        with pytest.raises(SimulationError, match="known"):
            suites.workloads_in("SPECint")


class TestSuiteCharacter:
    def test_joins_have_lower_locality_than_npb(self):
        joins = [catalog.get(n).numa_local_fraction for n in suites.workloads_in("hash joins")]
        npb = [catalog.get(n).numa_local_fraction for n in suites.workloads_in("NPB")]
        assert max(joins) < min(npb)
