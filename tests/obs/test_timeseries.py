"""Time-series recorder and exporter tests (repro.obs.timeseries)."""

import json
import math

import pytest

from repro.errors import ReproError
from repro.obs.metrics import Metrics
from repro.obs.timeseries import (
    Series,
    TimeSeriesRecorder,
    prometheus_exposition,
    write_timeseries_jsonl,
)


class TestSeries:
    def test_ring_buffer_drops_oldest(self):
        s = Series("online.queue_depth", capacity=3)
        for t in range(5):
            s.append(t, t * 10.0)
        assert s.points() == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
        assert s.last == 40.0
        assert len(s) == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(ReproError, match="online.queue_depth"):
            Series("online.queue_depth", capacity=0)

    def test_empty_series(self):
        s = Series("online.queue_depth")
        assert s.last is None
        assert s.values() == []


class TestRecorderSampling:
    def test_empty_registry_samples_no_series(self):
        recorder = TimeSeriesRecorder(Metrics())
        recorder.sample(0.0)
        recorder.sample(1.0)
        assert len(recorder) == 0
        assert recorder.data() == {}

    def test_counters_gauges_and_histograms_expand(self):
        m = Metrics()
        m.counter("online.arrivals").inc(3)
        m.gauge("online.queue_depth").set(2.0)
        m.histogram("online.slowdown", (1.0, 2.0, 4.0)).observe_many(
            [1.5, 1.5, 3.0]
        )
        recorder = TimeSeriesRecorder(m)
        recorder.sample(0.0)
        names = [s.name for s in recorder.all_series()]
        assert names == sorted(names)
        assert "online.arrivals" in names
        assert "online.queue_depth" in names
        for suffix in ("count", "mean", "p50", "p90", "p99"):
            assert f"online.slowdown.{suffix}" in names
        assert recorder.series("online.slowdown.count").last == 3
        assert recorder.series("online.slowdown.mean").last == pytest.approx(2.0)

    def test_single_sample_series_roundtrips(self, tmp_path):
        m = Metrics()
        m.counter("online.arrivals").inc()
        recorder = TimeSeriesRecorder(m)
        recorder.sample(5.0)
        out = write_timeseries_jsonl(tmp_path / "ts.jsonl", recorder)
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert rows == [{"series": "online.arrivals", "points": [[5.0, 1]]}]

    def test_sample_at_is_window_gated(self):
        m = Metrics()
        counter = m.counter("online.decisions")
        recorder = TimeSeriesRecorder(m, interval_s=10.0)
        # A burst of events inside one window yields one point per
        # crossed boundary, not one point per event.
        for _ in range(5):
            counter.inc()
            recorder.sample_at(3.0)
        assert len(recorder.series("online.decisions")) == 1
        # A long quiet gap back-fills one point per window boundary.
        recorder.sample_at(35.0)
        times = [t for t, _ in recorder.series("online.decisions").points()]
        assert times == [0.0, 10.0, 20.0, 30.0]

    def test_wall_clock_thread_samples_and_stops(self):
        m = Metrics()
        m.counter("online.arrivals").inc()
        recorder = TimeSeriesRecorder(m, interval_s=0.01)
        recorder.start()
        recorder.start()  # idempotent
        recorder.stop()  # takes one final sample even if none fired yet
        assert len(recorder.series("online.arrivals")) >= 1
        recorder.stop()  # idempotent after join

    def test_nonfinite_points_become_null_in_jsonl(self, tmp_path):
        m = Metrics()
        m.gauge("online.queue_depth").set(math.inf)
        recorder = TimeSeriesRecorder(m)
        recorder.sample(0.0)
        out = write_timeseries_jsonl(tmp_path / "ts.jsonl", recorder)
        row = json.loads(out.read_text())
        assert row["points"] == [[0.0, None]]

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ReproError, match="interval"):
            TimeSeriesRecorder(Metrics(), interval_s=0.0)


class TestPrometheusExposition:
    def test_empty_registry_is_empty_text(self):
        assert prometheus_exposition(Metrics()) == ""

    def test_counter_gauge_histogram_families(self):
        m = Metrics()
        m.counter("search.requests").inc(7)
        m.gauge("online.queue_depth").set(2.5)
        m.histogram("online.slowdown", (1.0, 2.0)).observe_many([0.5, 1.5, 9.0])
        text = prometheus_exposition(m)
        assert "# TYPE repro_search_requests_total counter" in text
        assert "repro_search_requests_total 7" in text
        assert "repro_online_queue_depth 2.5" in text
        assert 'repro_online_slowdown_bucket{le="1.0"} 1' in text
        assert 'repro_online_slowdown_bucket{le="2.0"} 2' in text
        assert 'repro_online_slowdown_bucket{le="+Inf"} 3' in text
        assert "repro_online_slowdown_sum 11.0" in text
        assert "repro_online_slowdown_count 3" in text
        assert text.endswith("\n")

    def test_nonfinite_values_are_skipped_with_comments(self):
        m = Metrics()
        m.gauge("online.queue_depth").set(math.nan)
        m.counter("search.wall_time_s").inc(math.inf)
        text = prometheus_exposition(m)
        assert "nan" not in text.replace("non-finite", "")
        assert "inf" not in text.replace("non-finite", "").replace("+Inf", "")
        assert "# repro: skipped non-finite gauge online.queue_depth" in text
        assert "# repro: skipped non-finite counter search.wall_time_s" in text

    def test_names_are_sanitised_to_prometheus_charset(self):
        m = Metrics()
        m.counter("online.jobs-per-day").inc()
        text = prometheus_exposition(m)
        assert "repro_online_jobs_per_day_total 1" in text
