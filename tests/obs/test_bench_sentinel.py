"""Bench-regression sentinel tests (repro.obs.bench).

The acceptance pair: ``check`` passes on the committed ``BENCH_*.json``
+ ``BENCH_HISTORY.jsonl``, and demonstrably fails — naming the metric,
its baseline and its tolerance — when a headline metric is perturbed
by twice its tolerance.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.obs import bench

REPO_ROOT = Path(__file__).resolve().parents[2]


def _copy_committed(tmp_path):
    for record in REPO_ROOT.glob("BENCH_*.json"):
        shutil.copy(record, tmp_path / record.name)
    history = REPO_ROOT / bench.HISTORY_FILE
    if history.exists():
        shutil.copy(history, tmp_path / bench.HISTORY_FILE)


class TestCommittedBaselines:
    def test_committed_bench_files_pass_the_check(self):
        report = bench.check(root=REPO_ROOT)
        assert report.ok, report.summary()
        checked = [r for r in report.rows if r.status in ("ok", "fail")]
        assert len(checked) == len(bench.HEADLINES)

    def test_perturbing_a_headline_by_twice_its_tolerance_fails(self, tmp_path):
        _copy_committed(tmp_path)
        metric = next(
            m for m in bench.HEADLINES
            if m.name == "surrogate.x5_2_speedup"
        )
        record = tmp_path / metric.file
        document = json.loads(record.read_text())
        baseline = document["sections"]["X5-2"]["speedup"]
        document["sections"]["X5-2"]["speedup"] = baseline * (
            1.0 - 2.0 * metric.tolerance
        )
        record.write_text(json.dumps(document))

        report = bench.check(root=tmp_path)
        assert not report.ok
        assert [row.metric.name for row in report.failures] == [metric.name]
        verdict = report.failures[0].describe()
        # The failure names the metric, its baseline and its tolerance.
        assert metric.name in verdict
        assert f"{baseline:.6g}" in verdict
        assert f"{metric.tolerance:.0%}" in verdict
        assert verdict.startswith("REGRESSION")

    def test_within_tolerance_drift_passes(self, tmp_path):
        _copy_committed(tmp_path)
        metric = next(
            m for m in bench.HEADLINES if m.name == "predictor.batch_speedup"
        )
        record = tmp_path / metric.file
        document = json.loads(record.read_text())
        document["headline"]["speedup"] *= 1.0 - 0.5 * metric.tolerance
        record.write_text(json.dumps(document))
        assert bench.check(root=tmp_path).ok


class TestCheckSemantics:
    def test_missing_file_is_a_skip_not_a_failure(self, tmp_path):
        report = bench.check(root=tmp_path)
        assert report.ok
        assert all(row.status == "skip" for row in report.rows)
        assert "skipped" in report.rows[0].describe()

    def test_no_history_means_new_not_failure(self, tmp_path):
        _copy_committed(tmp_path)
        (tmp_path / bench.HISTORY_FILE).unlink()
        report = bench.check(root=tmp_path)
        assert report.ok
        assert all(row.status == "new" for row in report.rows)

    def test_lower_direction_ignore_below_band(self, tmp_path):
        _copy_committed(tmp_path)
        # max_abs_deviation baseline is ~1e-15; a jump to 1e-10 is a
        # millionfold relative regression but still inside the 1e-9
        # don't-care band for near-zero noise.
        record = tmp_path / "BENCH_predictor.json"
        document = json.loads(record.read_text())
        document["headline"]["max_abs_deviation"] = 1e-10
        record.write_text(json.dumps(document))
        assert bench.check(root=tmp_path).ok
        document["headline"]["max_abs_deviation"] = 1e-3
        record.write_text(json.dumps(document))
        report = bench.check(root=tmp_path)
        assert [r.metric.name for r in report.failures] == [
            "predictor.max_abs_deviation"
        ]

    def test_present_file_with_broken_path_raises(self, tmp_path):
        (tmp_path / "BENCH_predictor.json").write_text('{"headline": {}}')
        with pytest.raises(ReproError, match="predictor.batch_speedup"):
            bench.read_headline_values(tmp_path)

    def test_report_json_is_machine_readable(self):
        report = bench.check(root=REPO_ROOT)
        decoded = json.loads(report.to_json())
        assert decoded["ok"] is True
        assert {row["status"] for row in decoded["rows"]} <= {
            "ok", "fail", "new", "skip"
        }


class TestHistory:
    def test_record_appends_and_labels_run_n(self, tmp_path):
        history = tmp_path / bench.HISTORY_FILE
        first = bench.append_history(history, {"a.b": 1.0, "c.d": None})
        assert first["label"] == "run-1"
        assert first["metrics"] == {"a.b": 1.0}  # absent metrics dropped
        second = bench.append_history(history, {"a.b": 2.0}, label="tuned")
        assert second["label"] == "tuned"
        entries = bench.load_history(history)
        assert len(entries) == 2
        assert bench.baseline_for(entries, "a.b") == 2.0  # most recent wins
        assert bench.baseline_for(entries, "zzz") is None

    def test_corrupt_history_raises_with_line_number(self, tmp_path):
        history = tmp_path / bench.HISTORY_FILE
        history.write_text('{"label": "ok", "metrics": {}}\nnot json\n')
        with pytest.raises(ReproError, match=":2"):
            bench.load_history(history)

    def test_headline_validation(self):
        with pytest.raises(ReproError, match="sideways"):
            bench.HeadlineMetric(
                "x.y", "BENCH_x.json", ("a",), "sideways", 0.1
            )
        with pytest.raises(ReproError, match="tolerance"):
            bench.HeadlineMetric("x.y", "BENCH_x.json", ("a",), "lower", 1.5)
