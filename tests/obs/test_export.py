"""Unit tests for the exporters (repro.obs.export)."""

import json

import pytest

from repro.obs.trace import Tracer
from repro.obs.export import (
    chrome_trace_events,
    read_spans_jsonl,
    to_chrome_trace,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
    write_spans_jsonl,
)


def _sample_spans():
    """outer > (first, second) on one thread, plus a merged-in span
    from a fake worker process."""
    tracer = Tracer()
    with tracer.span("outer", workload="MD"):
        with tracer.span("first"):
            pass
        with tracer.span("second", misses=3):
            pass
    spans = tracer.spans()
    worker = Tracer()
    with worker.span("chunk", parent=spans[-1].span_id):
        pass
    shipped = worker.drain()
    for span in shipped:  # simulate a forked worker's identity
        span.pid += 1
    tracer.absorb(shipped)
    return tracer.spans()


class TestChromeExport:
    def test_events_pair_b_and_e(self):
        events = chrome_trace_events(_sample_spans())
        b = [e for e in events if e["ph"] == "B"]
        e = [e for e in events if e["ph"] == "E"]
        assert len(b) == len(e) == 4
        assert {ev["name"] for ev in b} == {"outer", "first", "second", "chunk"}

    def test_nesting_survives_shuffled_buffer(self):
        spans = _sample_spans()
        spans.reverse()  # pool merges arrive in arbitrary order
        document = to_chrome_trace(spans)
        counts = validate_chrome_trace(document)
        assert counts["spans"] == 4
        assert counts["tracks"] == 2  # parent pid + fake worker pid

    def test_b_events_carry_span_identity_and_attrs(self):
        events = chrome_trace_events(_sample_spans())
        outer = next(e for e in events if e["ph"] == "B" and e["name"] == "outer")
        assert outer["args"]["workload"] == "MD"
        assert outer["args"]["parent_id"] is None
        assert "cpu_ms" in outer["args"]
        second = next(e for e in events if e["ph"] == "B" and e["name"] == "second")
        assert second["args"]["misses"] == 3

    def test_timestamps_are_normalised_microseconds(self):
        events = chrome_trace_events(_sample_spans())
        ts = [e["ts"] for e in events]
        assert min(ts) == 0.0
        assert all(t >= 0 for t in ts)

    def test_write_and_validate_file(self, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json", _sample_spans())
        counts = validate_chrome_trace_file(path)
        assert counts["spans"] == 4
        document = json.loads(path.read_text())
        assert document["otherData"]["producer"] == "repro.obs"

    def test_empty_span_list_is_valid(self):
        assert validate_chrome_trace(to_chrome_trace([])) == {
            "events": 0,
            "spans": 0,
            "tracks": 0,
        }


class TestJsonlExport:
    def test_one_object_per_line(self, tmp_path):
        spans = _sample_spans()
        path = write_spans_jsonl(tmp_path / "spans.jsonl", spans)
        lines = path.read_text().splitlines()
        assert len(lines) == len(spans)
        rows = [json.loads(line) for line in lines]
        assert {r["name"] for r in rows} == {"outer", "first", "second", "chunk"}
        chunk = next(r for r in rows if r["name"] == "chunk")
        assert chunk["parent_id"] is not None

    def test_read_spans_jsonl_round_trips(self, tmp_path):
        spans = _sample_spans()
        path = write_spans_jsonl(tmp_path / "spans.jsonl", spans)
        loaded = read_spans_jsonl(path)
        assert [(s.name, s.span_id, s.parent_id, s.dur_ns) for s in loaded] == [
            (s.name, s.span_id, s.parent_id, s.dur_ns) for s in spans
        ]
        assert loaded[0].attrs == spans[0].attrs

    def test_read_spans_jsonl_names_bad_line(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text('{"name": "orphan"}\n')
        with pytest.raises(ValueError, match="spans.jsonl:1"):
            read_spans_jsonl(path)

    def test_read_spans_jsonl_skips_blank_lines(self, tmp_path):
        spans = _sample_spans()
        path = write_spans_jsonl(tmp_path / "spans.jsonl", spans)
        path.write_text(path.read_text() + "\n\n")
        assert len(read_spans_jsonl(path)) == len(spans)


class TestValidation:
    def _event(self, **overrides):
        base = {"name": "s", "ph": "B", "ts": 0.0, "pid": 1, "tid": 1}
        base.update(overrides)
        return base

    def test_rejects_missing_trace_events(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"foo": []})

    def test_rejects_missing_required_key(self):
        event = self._event()
        del event["tid"]
        with pytest.raises(ValueError, match="missing 'tid'"):
            validate_chrome_trace({"traceEvents": [event]})

    def test_rejects_non_integer_pid(self):
        with pytest.raises(ValueError, match="pid/tid"):
            validate_chrome_trace({"traceEvents": [self._event(pid="one")]})

    def test_rejects_backwards_timestamps(self):
        events = [
            self._event(ts=5.0),
            self._event(name="s", ph="E", ts=1.0),
        ]
        with pytest.raises(ValueError, match="backwards"):
            validate_chrome_trace({"traceEvents": events})

    def test_rejects_unmatched_end(self):
        with pytest.raises(ValueError, match="no open 'B'"):
            validate_chrome_trace({"traceEvents": [self._event(ph="E")]})

    def test_rejects_name_mismatch(self):
        events = [self._event(name="a"), self._event(name="b", ph="E", ts=1.0)]
        with pytest.raises(ValueError, match="does not match"):
            validate_chrome_trace({"traceEvents": events})

    def test_rejects_dangling_begin(self):
        with pytest.raises(ValueError, match="unclosed"):
            validate_chrome_trace({"traceEvents": [self._event()]})

    def test_accepts_metadata_and_instant_events(self):
        events = [
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 1},
            self._event(),
            self._event(ph="i", ts=1.0),
            self._event(ph="E", ts=2.0),
        ]
        counts = validate_chrome_trace({"traceEvents": events})
        assert counts["spans"] == 1

    def test_non_finite_attrs_survive_json_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s", residual=float("inf")):
            pass
        path = write_chrome_trace(tmp_path / "t.json", tracer.spans())
        validate_chrome_trace_file(path)  # json.load must not choke
