"""Satellite guard: observability must be free when disabled.

Three complementary checks:

* a *deterministic* guard — the batch kernel consults ``obs.enabled()``
  once per chunk, never per iteration or per row, proving the
  per-iteration telemetry is hoisted behind one branch;
* a *correctness* guard — enabling tracing never changes predictions
  (bit-identical results, because telemetry only reads kernel state);
* a *wall-clock* guard — the disabled instrumented kernel runs within
  5% of a no-obs baseline (``enabled`` stubbed to a bare ``False``
  return) on an X2-4 population, best-of-N to shed scheduler noise.
"""

import time

import pytest

from repro import obs
from repro.core.machine_desc import generate_machine_description
from repro.core.placement import sample_canonical
from repro.core.predictor import PandiaPredictor
from repro.core.workload_desc import WorkloadDescriptionGenerator
from repro.hardware import machines
from repro.sim.noise import NO_NOISE
from repro.workloads import catalog


@pytest.fixture(scope="module")
def setup():
    spec = machines.get("X2-4")
    md = generate_machine_description(spec, noise=NO_NOISE)
    generator = WorkloadDescriptionGenerator(spec, md, noise=NO_NOISE)
    workload = generator.generate(catalog.get("MD"))
    placements = sample_canonical(spec.topology, 48, seed=11)
    return PandiaPredictor(md), workload, placements


def _fingerprint(predictions):
    """Every numeric field, exactly — for bit-identity comparison."""
    return [
        (
            p.speedup,
            p.predicted_time_s,
            p.slowdowns,
            p.utilisations,
            p.iterations,
            p.converged,
            tuple(sorted(p.resource_loads.items())),
        )
        for p in predictions
    ]


class TestDisabledPathIsHoisted:
    def test_batch_kernel_checks_enabled_once_per_chunk(self, setup, monkeypatch):
        predictor, workload, placements = setup
        calls = []
        monkeypatch.setattr(obs, "enabled", lambda: calls.append(1) is None and False)
        predictor.predict_batch(workload, placements)
        # One check per chunk (48 placements < BATCH_CHUNK = one chunk):
        # anything growing with iterations or rows means the hoisting
        # regressed.
        assert len(calls) == 1

    def test_scalar_predict_checks_enabled_once(self, setup, monkeypatch):
        predictor, workload, placements = setup
        calls = []
        monkeypatch.setattr(obs, "enabled", lambda: calls.append(1) is None and False)
        predictor.predict(workload, placements[0], keep_trace=True)
        assert len(calls) == 1


class TestTracingNeverChangesResults:
    def test_batch_predictions_bit_identical(self, setup):
        predictor, workload, placements = setup
        baseline = _fingerprint(predictor.predict_batch(workload, placements))
        obs.enable()
        try:
            traced = _fingerprint(predictor.predict_batch(workload, placements))
        finally:
            obs.disable()
        assert traced == baseline

    def test_scalar_prediction_bit_identical(self, setup):
        predictor, workload, placements = setup
        baseline = predictor.predict(workload, placements[3], keep_trace=True)
        obs.enable()
        try:
            traced = predictor.predict(workload, placements[3], keep_trace=True)
        finally:
            obs.disable()
        assert traced.speedup == baseline.speedup
        assert traced.slowdowns == baseline.slowdowns
        assert traced.iterations == baseline.iterations
        assert [t.vectors for t in traced.trace] == [
            t.vectors for t in baseline.trace
        ]
        assert [t.max_residual for t in traced.trace] == [
            t.max_residual for t in baseline.trace
        ]


class TestDisabledOverheadBudget:
    def test_batch_throughput_within_5_percent_of_no_obs_baseline(
        self, setup, monkeypatch
    ):
        predictor, workload, placements = setup

        def best_of(n, fn):
            best = float("inf")
            for _ in range(n):
                t0 = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - t0)
            return best

        run = lambda: predictor.predict_batch(workload, placements)
        run()  # warm template/share caches out of the measurement

        obs.disable()
        disabled = best_of(5, run)
        with monkeypatch.context() as m:
            m.setattr(obs, "enabled", lambda: False)  # the no-obs stand-in
            baseline = best_of(5, run)
        # 5% relative budget plus 2ms absolute slack for timer noise on
        # very fast runs.
        assert disabled <= baseline * 1.05 + 2e-3, (
            f"disabled-obs batch path {disabled * 1e3:.1f} ms vs "
            f"no-obs baseline {baseline * 1e3:.1f} ms"
        )
