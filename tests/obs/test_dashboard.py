"""HTML ops-dashboard tests (repro.obs.dashboard)."""

from repro.obs.dashboard import (
    DEFAULT_HEALTH,
    HealthRule,
    render_dashboard,
    write_dashboard,
)
from repro.obs.metrics import Metrics
from repro.obs.timeseries import TimeSeriesRecorder
from repro.obs.trace import Span


def _loaded_registry():
    m = Metrics()
    m.counter("online.arrivals").inc(10)
    m.counter("online.decisions").inc(8)
    m.gauge("online.queue_depth").set(2.0)
    m.histogram("online.slowdown", (1.0, 2.0, 4.0)).observe_many(
        [1.1, 1.4, 2.2, 3.0]
    )
    return m


def _spans():
    return [
        Span(name="online.run", span_id="1-1", parent_id=None,
             pid=1, tid=1, start_ns=0, dur_ns=50_000),
        Span(name="online.decide", span_id="1-2", parent_id="1-1",
             pid=1, tid=1, start_ns=0, dur_ns=20_000),
    ]


class TestRenderDashboard:
    def test_full_page_has_all_sections(self):
        m = _loaded_registry()
        recorder = TimeSeriesRecorder(m)
        for t in (0.0, 1.0, 2.0):
            recorder.sample(t)
        html = render_dashboard(
            title="test run", metrics=m, recorder=recorder, spans=_spans(),
        )
        assert html.count('class="sparkline"') >= 3
        assert "<th>p50</th><th>p90</th><th>p99</th>" in html
        assert "repro-flamegraph" in html
        assert "online.slowdown" in html
        assert html.startswith("<!DOCTYPE html>")
        assert 'class="stub"' not in html

    def test_no_data_renders_stub_page_not_crash(self):
        html = render_dashboard(metrics=Metrics(), recorder=None, spans=None)
        assert 'class="stub"' in html
        assert "No observability data" in html
        assert "sparkline" not in html

    def test_note_and_plain_dict_inputs(self):
        html = render_dashboard(
            metrics={"counters": {"online.arrivals": 2}, "gauges": {},
                     "histograms": {}},
            recorder={"online.arrivals": [[0.0, 1.0], [1.0, 2.0]]},
            note="12 jobs",
        )
        assert "12 jobs" in html
        assert html.count('class="sparkline"') == 1

    def test_write_dashboard(self, tmp_path):
        out = write_dashboard(
            tmp_path / "dash.html", metrics=_loaded_registry(),
        )
        assert out.read_text().startswith("<!DOCTYPE html>")


class TestHealthRules:
    def test_breach_and_ok_badges(self):
        m = _loaded_registry()
        rules = (
            HealthRule("queue depth", "online.queue_depth", "value",
                       threshold=1.0),  # 2.0 > 1.0: breach
            HealthRule("mean slowdown", "online.slowdown", "mean",
                       threshold=25.0),  # healthy
        )
        html = render_dashboard(metrics=m, health=rules)
        assert 'class="badge bad">queue depth' in html
        assert 'class="badge ok">mean slowdown' in html
        assert "BREACH" in html

    def test_absent_instrument_is_not_applicable(self):
        rule = HealthRule("latency p99", "online.decision_us", "p99",
                          threshold=1.0)
        assert rule.evaluate(Metrics().data()) is None

    def test_empty_histogram_is_not_applicable(self):
        m = Metrics()
        m.histogram("online.decision_us")
        rule = HealthRule("latency p99", "online.decision_us", "p99",
                          threshold=1.0)
        assert rule.evaluate(m.data()) is None

    def test_counter_ratio_with_zero_denominator(self):
        m = Metrics()
        m.counter("search.surrogate_fallbacks").inc(1)
        m.counter("search.rounds")
        rule = HealthRule("fallback rate", "search.surrogate_fallbacks",
                          "value", threshold=0.5,
                          denominator="search.rounds")
        value, healthy = rule.evaluate(m.data())
        assert value == 1.0  # denominator floored at 1
        assert not healthy

    def test_percentile_stat_reads_histogram(self):
        m = _loaded_registry()
        rule = HealthRule("slowdown p99", "online.slowdown", "p99",
                          threshold=2.0)
        value, healthy = rule.evaluate(m.data())
        assert value > 2.0
        assert not healthy

    def test_default_rules_apply_cleanly_to_online_registry(self):
        data = _loaded_registry().data()
        outcomes = [rule.evaluate(data) for rule in DEFAULT_HEALTH]
        # Rules whose instruments exist evaluate; the others opt out.
        assert any(outcome is not None for outcome in outcomes)
        for outcome in outcomes:
            if outcome is not None:
                value, healthy = outcome
                assert isinstance(healthy, bool)
