"""Shared fixture: every obs test runs against clean, disabled state."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Isolate the process-wide tracer/metrics across tests."""
    was_enabled = obs.enabled()
    obs.disable()
    obs.reset()
    yield
    obs.reset()
    if was_enabled:
        obs.enable()
    else:
        obs.disable()
