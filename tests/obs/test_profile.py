"""Span-tree profiling tests (repro.obs.profile)."""

import re

from repro.obs.profile import (
    aggregate,
    flamegraph_svg,
    folded_stacks,
    hot_table,
)
from repro.obs.trace import Span


def _span(name, span_id, parent, start_ns, dur_ns):
    return Span(
        name=name, span_id=span_id, parent_id=parent,
        pid=1, tid=1, start_ns=start_ns, dur_ns=dur_ns,
    )


def _tree():
    """One root (100us) with two children; one child repeats."""
    return [
        _span("run.root", "1-1", None, 0, 100_000),
        _span("phase.a", "1-2", "1-1", 0, 30_000),
        _span("phase.a", "1-3", "1-1", 30_000, 20_000),
        _span("phase.b", "1-4", "1-1", 50_000, 40_000),
    ]


class TestAggregate:
    def test_single_root_and_sibling_merge(self):
        root = aggregate(_tree())
        assert root.name == "run.root"
        assert root.total_ns == 100_000
        a = root.children["phase.a"]
        assert a.count == 2
        assert a.total_ns == 50_000
        assert root.self_ns == 100_000 - 50_000 - 40_000

    def test_multi_root_gets_synthetic_run(self):
        spans = [
            _span("one", "1-1", None, 0, 10),
            _span("two", "1-2", None, 10, 20),
        ]
        root = aggregate(spans)
        assert root.name == "run"
        assert root.total_ns == 30
        assert set(root.children) == {"one", "two"}

    def test_orphan_parent_becomes_top_level(self):
        spans = [_span("lost", "1-9", "0-404", 0, 5)]
        root = aggregate(spans)
        assert root.name == "lost"

    def test_self_time_floors_at_zero(self):
        # Parallel children over-subscribe the parent's wall time.
        spans = [
            _span("parent", "1-1", None, 0, 100),
            _span("kid", "1-2", "1-1", 0, 80),
            _span("kid2", "1-3", "1-1", 0, 80),
        ]
        root = aggregate(spans)
        assert root.child_total_ns == 160
        assert root.self_ns == 0


class TestFoldedStacks:
    def test_self_times_sum_to_root_total(self):
        lines = folded_stacks(_tree())
        assert sum(v for _, v in lines) == 100_000 // 1000
        paths = [p for p, _ in lines]
        assert "run.root;phase.a" in paths
        assert "run.root;phase.b" in paths

    def test_leaf_with_zero_self_time_is_kept(self):
        spans = [
            _span("parent", "1-1", None, 0, 2_000),
            _span("kid", "1-2", "1-1", 0, 2_000),
        ]
        lines = dict(folded_stacks(spans))
        assert lines["parent;kid"] == 2


class TestHotTable:
    def test_sorted_by_self_time_and_truncated(self):
        rows = hot_table(_tree(), top=2)
        assert len(rows) == 2
        self_times = [r[3] for r in rows]
        assert self_times == sorted(self_times, reverse=True)
        name, count, total_ms, self_ms, pct = rows[0]
        assert name == "phase.a"
        assert count == 2
        assert total_ms == 0.05
        assert pct == 50.0


class TestFlamegraph:
    def test_root_width_is_run_wall_time(self):
        svg = flamegraph_svg(_tree(), width=1000)
        assert 'data-root-ns="100000"' in svg
        # The root box spans the full canvas width.
        assert re.search(
            r'data-name="run.root"><rect x="0.00" y="\d+" width="1000.00"',
            svg,
        )

    def test_parallel_children_are_rescaled_to_fit(self):
        spans = [
            _span("parent", "1-1", None, 0, 100_000),
            _span("kid.a", "1-2", "1-1", 0, 80_000),
            _span("kid.b", "1-3", "1-1", 0, 80_000),
        ]
        svg = flamegraph_svg(spans, width=1000)
        widths = [
            float(w)
            for w in re.findall(r'<rect x="[\d.]+" y="40" width="([\d.]+)"', svg)
        ]
        # Two children, scaled from 800px each down to 500px each so the
        # row never overflows the parent's box.
        assert len(widths) == 2
        assert sum(widths) <= 1000.0 + 1e-6
        assert widths[0] == widths[1] == 500.0

    def test_tooltips_and_title(self):
        svg = flamegraph_svg(_tree(), title="unit test")
        assert "unit test" in svg
        assert "<title>phase.b: 0.04 ms (1 span)</title>" in svg

    def test_empty_trace_renders_empty_root(self):
        svg = flamegraph_svg([])
        assert 'data-root-ns="0"' in svg
        assert svg.startswith("<svg ")
