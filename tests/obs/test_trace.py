"""Unit tests for the span tracer (repro.obs.trace)."""

import os
import threading

from repro import obs
from repro.obs.trace import NULL_SPAN, Tracer


class TestSpanLifecycle:
    def test_start_end_records_duration(self):
        tracer = Tracer()
        span = tracer.start("phase", attrs={"k": 1})
        tracer.end(span)
        assert span.dur_ns >= 0
        assert span.end_ns == span.start_ns + span.dur_ns
        assert span.attrs == {"k": 1}
        assert tracer.spans() == [span]

    def test_span_ids_embed_pid_and_are_unique(self):
        tracer = Tracer()
        ids = set()
        for _ in range(10):
            span = tracer.start("s")
            tracer.end(span)
            assert span.span_id.startswith(f"{os.getpid()}-")
            ids.add(span.span_id)
        assert len(ids) == 10

    def test_nesting_sets_parent_implicitly(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            assert tracer.current_id() == outer.span_id
        assert outer.parent_id is None
        assert tracer.current_id() is None

    def test_explicit_parent_overrides_stack(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("adopted", parent="other-pid-7") as span:
                assert span.parent_id == "other-pid-7"

    def test_out_of_order_end_is_tolerated(self):
        tracer = Tracer()
        outer = tracer.start("outer")
        inner = tracer.start("inner")
        tracer.end(outer)  # closes outer, discards inner from the stack
        assert tracer.current_id() is None
        assert [s.name for s in tracer.spans()] == ["outer"]
        tracer.end(inner)  # still records the straggler

    def test_thread_stacks_are_independent(self):
        tracer = Tracer()
        seen = {}

        def worker():
            with tracer.span("worker") as span:
                seen["parent"] = span.parent_id

        with tracer.span("main"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        # The worker thread has its own (empty) stack, so its span is
        # not parented under main's open span.
        assert seen["parent"] is None

    def test_drain_and_absorb_move_spans(self):
        producer, consumer = Tracer(), Tracer()
        producer.end(producer.start("a"))
        producer.end(producer.start("b"))
        shipped = producer.drain()
        assert len(producer) == 0
        consumer.absorb(shipped)
        assert [s.name for s in consumer.spans()] == ["a", "b"]

    def test_to_dict_round_trips_fields(self):
        tracer = Tracer()
        span = tracer.start("x", attrs={"n": 3})
        tracer.end(span)
        d = span.to_dict()
        assert d["name"] == "x"
        assert d["span_id"] == span.span_id
        assert d["attrs"] == {"n": 3}
        assert d["pid"] == os.getpid()


class TestModuleSwitch:
    def test_disabled_span_is_null(self):
        assert not obs.enabled()
        cm = obs.span("anything", key="value")
        assert cm is NULL_SPAN
        with cm as span:
            assert span is None
        assert len(obs.tracer()) == 0

    def test_enabled_span_collects(self):
        obs.enable()
        with obs.span("phase", alpha=1) as span:
            assert span is not None
            span.attrs["beta"] = 2
        spans = obs.tracer().spans()
        assert len(spans) == 1
        assert spans[0].attrs == {"alpha": 1, "beta": 2}

    def test_reset_clears_both_stores(self):
        obs.enable()
        with obs.span("phase"):
            pass
        obs.metrics().counter("c").inc()
        obs.reset()
        assert len(obs.tracer()) == 0
        assert not obs.metrics()
        assert obs.enabled()  # reset keeps the switch position

    def test_worker_payload_round_trip(self):
        obs.enable()
        with obs.span("parent-side"):
            pass
        before = len(obs.tracer())
        # Same-process: begin_worker must NOT discard the buffer (the
        # pid check only fires in a forked child).
        obs.begin_worker()
        assert len(obs.tracer()) == before
        with obs.span("worker-side"):
            pass
        obs.metrics().counter("work").inc(3)
        payload = obs.collect_worker()
        assert len(obs.tracer()) == 0  # drained
        obs.absorb_worker(payload)
        assert {s.name for s in obs.tracer().spans()} == {
            "parent-side",
            "worker-side",
        }
        assert obs.metrics().counter("work").value == 3


class TestEnvConfiguration:
    def test_falsey_values_leave_disabled(self):
        from repro.obs import _configure_from_env

        for value in (None, "", "0", "false", "off", "no"):
            _configure_from_env(value)
            assert not obs.enabled()

    def test_truthy_value_enables(self):
        from repro.obs import _configure_from_env

        _configure_from_env("1")
        assert obs.enabled()
