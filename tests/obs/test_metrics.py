"""Unit tests for the metrics registry (repro.obs.metrics)."""

import math

import pytest

from repro.obs.metrics import DEFAULT_BUCKETS, Metrics, percentile_from_counts


class TestInstruments:
    def test_counter_get_or_create_and_int_preservation(self):
        m = Metrics()
        c = m.counter("requests")
        assert m.counter("requests") is c
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert isinstance(c.value, int)
        c.inc(0.5)
        assert isinstance(c.value, float)

    def test_gauge_last_write_wins(self):
        m = Metrics()
        g = m.gauge("depth")
        assert g.value is None
        g.set(3.0)
        g.set(1.0)
        assert g.value == 1.0

    def test_histogram_bucketing(self):
        m = Metrics()
        h = m.histogram("lat", buckets=(1, 10, 100))
        h.observe_many([0.5, 1.0, 5, 50, 500, 5000])
        assert h.counts == [2, 1, 1, 2]  # <=1, <=10, <=100, overflow
        assert h.count == 6
        assert h.vmin == 0.5
        assert h.vmax == 5000
        assert h.mean == pytest.approx(sum([0.5, 1.0, 5, 50, 500, 5000]) / 6)

    def test_histogram_rejects_non_ascending_buckets(self):
        m = Metrics()
        with pytest.raises(ValueError):
            m.histogram("bad", buckets=(1, 1, 2))
        with pytest.raises(ValueError):
            m.histogram("worse", buckets=())

    def test_empty_histogram_mean_is_zero(self):
        assert Metrics().histogram("h").mean == 0.0


class TestMergeAndSnapshot:
    def test_merge_adds_counters_and_histograms(self):
        a, b = Metrics(), Metrics()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        a.histogram("h", buckets=(1, 2)).observe(1)
        b.histogram("h", buckets=(1, 2)).observe(5)
        b.gauge("g").set(7.0)
        a.merge(b)
        assert a.counter("n").value == 5
        h = a.histogram("h", buckets=(1, 2))
        assert h.count == 2
        assert h.counts == [1, 0, 1]
        assert a.gauge("g").value == 7.0
        # b is untouched
        assert b.counter("n").value == 3

    def test_merge_accepts_plain_data_dict(self):
        a, b = Metrics(), Metrics()
        b.counter("n").inc()
        a.merge(b.data())
        assert a.counter("n").value == 1

    def test_merge_rejects_mismatched_buckets(self):
        a, b = Metrics(), Metrics()
        a.histogram("h", buckets=(1, 2)).observe(1)
        b.histogram("h", buckets=(1, 3)).observe(1)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_snapshot_is_independent(self):
        m = Metrics()
        m.counter("n").inc(1)
        snap = m.snapshot()
        m.counter("n").inc(10)
        assert snap.counter("n").value == 1
        assert m.counter("n").value == 11

    def test_data_is_json_safe(self):
        import json

        m = Metrics()
        m.counter("n").inc()
        m.gauge("g").set(2.5)
        m.histogram("h").observe(3)
        payload = m.data()
        decoded = json.loads(json.dumps(payload))
        assert decoded["counters"]["n"] == 1
        assert decoded["histograms"]["h"]["count"] == 1

    def test_empty_histogram_merge_keeps_sentinels(self):
        a, b = Metrics(), Metrics()
        a.histogram("h")
        b.histogram("h")
        a.merge(b)
        h = a.histogram("h")
        assert h.count == 0
        assert h.vmin == math.inf and h.vmax == -math.inf


class TestPercentile:
    def test_empty_histogram_is_zero(self):
        assert Metrics().histogram("h").percentile(0.5) == 0.0

    def test_q_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile_from_counts((1.0, 2.0), [0, 0, 0], 1.5)
        with pytest.raises(ValueError):
            Metrics().histogram("h").percentile(-0.1)

    def test_single_sample_is_exact(self):
        # vmin == vmax clamps the interpolation to the observed value.
        h = Metrics().histogram("h", buckets=(10, 20, 30))
        h.observe(17.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.percentile(q) == pytest.approx(17.0)

    def test_uniform_interpolation_within_bucket(self):
        # 100 observations all in the (10, 20] bucket: the estimator
        # spreads them uniformly, so p50 sits mid-bucket.
        counts = [0, 100, 0, 0]
        value = percentile_from_counts((10.0, 20.0, 30.0), counts, 0.5)
        assert value == pytest.approx(15.0)

    def test_interpolates_across_buckets(self):
        # 50 below 10, 50 in (10, 20]: p25 is mid-first-bucket (lo=0
        # without a known vmin), p75 mid-second.
        counts = [50, 50, 0, 0]
        assert percentile_from_counts(
            (10.0, 20.0, 30.0), counts, 0.25
        ) == pytest.approx(5.0)
        assert percentile_from_counts(
            (10.0, 20.0, 30.0), counts, 0.75
        ) == pytest.approx(15.0)

    def test_overflow_bucket_bounded_by_vmax(self):
        counts = [0, 0, 0, 10]
        value = percentile_from_counts(
            (1.0, 2.0, 3.0), counts, 1.0, vmin=4.0, vmax=9.0
        )
        assert value == pytest.approx(9.0)
        # Without a known max the overflow bucket degrades to the last
        # bound rather than inventing an upper edge.
        assert percentile_from_counts(
            (1.0, 2.0, 3.0), counts, 1.0
        ) == pytest.approx(3.0)

    def test_monotone_in_q(self):
        h = Metrics().histogram("h", buckets=DEFAULT_BUCKETS)
        h.observe_many([1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144])
        quantiles = [h.percentile(q / 10) for q in range(11)]
        assert quantiles == sorted(quantiles)
        assert quantiles[0] == pytest.approx(1.0)
        assert quantiles[-1] == pytest.approx(144.0)


class TestSnapshotDeepCopy:
    def test_snapshot_histogram_counts_never_alias_live_buckets(self):
        # The mutation test pinning the deep copy: observing into the
        # live histogram after a snapshot must not leak into the
        # snapshot's bucket array.
        m = Metrics()
        h = m.histogram("h", buckets=(1, 10))
        h.observe_many([0.5, 5.0])
        snap = m.snapshot()
        frozen = snap.histogram("h", buckets=(1, 10))
        assert frozen.counts is not h.counts
        h.observe_many([0.7, 7.0, 70.0])
        assert frozen.counts == [1, 1, 0]
        assert frozen.count == 2
        assert frozen.vmax == 5.0
        assert h.counts == [2, 2, 1]

    def test_snapshot_gauge_and_counter_are_independent(self):
        m = Metrics()
        m.counter("n").inc(3)
        m.gauge("g").set(1.5)
        snap = m.snapshot()
        m.counter("n").inc()
        m.gauge("g").set(9.0)
        assert snap.counter("n").value == 3
        assert snap.gauge("g").value == 1.5

    def test_snapshot_percentiles_stay_frozen(self):
        m = Metrics()
        h = m.histogram("h", buckets=(10, 20, 30))
        h.observe(17.0)
        snap = m.snapshot()
        h.observe_many([29.0] * 99)
        assert snap.histogram("h", buckets=(10, 20, 30)).percentile(
            0.5
        ) == pytest.approx(17.0)
        assert h.percentile(0.9) > 17.0


class TestSummary:
    def test_summary_lists_all_instrument_kinds(self):
        m = Metrics()
        m.counter("search.requests").inc(12)
        m.gauge("pool.workers").set(4)
        m.histogram("iters", buckets=DEFAULT_BUCKETS).observe_many([2, 3, 7])
        text = m.summary(title="run metrics")
        assert text.startswith("run metrics:")
        assert "search.requests" in text
        assert "pool.workers" in text
        assert "iters: count=3" in text
        assert "<=5: 1" in text  # 3 falls in the (2, 5] bucket

    def test_empty_summary(self):
        assert "(empty)" in Metrics().summary()

    def test_clear_and_bool(self):
        m = Metrics()
        assert not m
        m.counter("x")
        assert m
        m.clear()
        assert not m
