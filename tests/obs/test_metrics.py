"""Unit tests for the metrics registry (repro.obs.metrics)."""

import math

import pytest

from repro.obs.metrics import DEFAULT_BUCKETS, Metrics


class TestInstruments:
    def test_counter_get_or_create_and_int_preservation(self):
        m = Metrics()
        c = m.counter("requests")
        assert m.counter("requests") is c
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert isinstance(c.value, int)
        c.inc(0.5)
        assert isinstance(c.value, float)

    def test_gauge_last_write_wins(self):
        m = Metrics()
        g = m.gauge("depth")
        assert g.value is None
        g.set(3.0)
        g.set(1.0)
        assert g.value == 1.0

    def test_histogram_bucketing(self):
        m = Metrics()
        h = m.histogram("lat", buckets=(1, 10, 100))
        h.observe_many([0.5, 1.0, 5, 50, 500, 5000])
        assert h.counts == [2, 1, 1, 2]  # <=1, <=10, <=100, overflow
        assert h.count == 6
        assert h.vmin == 0.5
        assert h.vmax == 5000
        assert h.mean == pytest.approx(sum([0.5, 1.0, 5, 50, 500, 5000]) / 6)

    def test_histogram_rejects_non_ascending_buckets(self):
        m = Metrics()
        with pytest.raises(ValueError):
            m.histogram("bad", buckets=(1, 1, 2))
        with pytest.raises(ValueError):
            m.histogram("worse", buckets=())

    def test_empty_histogram_mean_is_zero(self):
        assert Metrics().histogram("h").mean == 0.0


class TestMergeAndSnapshot:
    def test_merge_adds_counters_and_histograms(self):
        a, b = Metrics(), Metrics()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        a.histogram("h", buckets=(1, 2)).observe(1)
        b.histogram("h", buckets=(1, 2)).observe(5)
        b.gauge("g").set(7.0)
        a.merge(b)
        assert a.counter("n").value == 5
        h = a.histogram("h", buckets=(1, 2))
        assert h.count == 2
        assert h.counts == [1, 0, 1]
        assert a.gauge("g").value == 7.0
        # b is untouched
        assert b.counter("n").value == 3

    def test_merge_accepts_plain_data_dict(self):
        a, b = Metrics(), Metrics()
        b.counter("n").inc()
        a.merge(b.data())
        assert a.counter("n").value == 1

    def test_merge_rejects_mismatched_buckets(self):
        a, b = Metrics(), Metrics()
        a.histogram("h", buckets=(1, 2)).observe(1)
        b.histogram("h", buckets=(1, 3)).observe(1)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_snapshot_is_independent(self):
        m = Metrics()
        m.counter("n").inc(1)
        snap = m.snapshot()
        m.counter("n").inc(10)
        assert snap.counter("n").value == 1
        assert m.counter("n").value == 11

    def test_data_is_json_safe(self):
        import json

        m = Metrics()
        m.counter("n").inc()
        m.gauge("g").set(2.5)
        m.histogram("h").observe(3)
        payload = m.data()
        decoded = json.loads(json.dumps(payload))
        assert decoded["counters"]["n"] == 1
        assert decoded["histograms"]["h"]["count"] == 1

    def test_empty_histogram_merge_keeps_sentinels(self):
        a, b = Metrics(), Metrics()
        a.histogram("h")
        b.histogram("h")
        a.merge(b)
        h = a.histogram("h")
        assert h.count == 0
        assert h.vmin == math.inf and h.vmax == -math.inf


class TestSummary:
    def test_summary_lists_all_instrument_kinds(self):
        m = Metrics()
        m.counter("search.requests").inc(12)
        m.gauge("pool.workers").set(4)
        m.histogram("iters", buckets=DEFAULT_BUCKETS).observe_many([2, 3, 7])
        text = m.summary(title="run metrics")
        assert text.startswith("run metrics:")
        assert "search.requests" in text
        assert "pool.workers" in text
        assert "iters: count=3" in text
        assert "<=5: 1" in text  # 3 falls in the (2, 5] bucket

    def test_empty_summary(self):
        assert "(empty)" in Metrics().summary()

    def test_clear_and_bool(self):
        m = Metrics()
        assert not m
        m.counter("x")
        assert m
        m.clear()
        assert not m
