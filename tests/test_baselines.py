"""Tests for the Section-7 baseline deciders."""

import pytest

from repro.baselines import (
    RegressionModel,
    fit_regression_baseline,
    os_packed_choice,
    os_spread_choice,
    regression_choice,
)
from repro.errors import ReproError
from repro.sim.noise import NO_NOISE
from repro.workloads.spec import WorkloadSpec


class TestOsHeuristics:
    def test_default_uses_every_hw_thread(self, testbox):
        topo = testbox.topology
        assert os_packed_choice(topo).n_threads == topo.n_hw_threads
        assert os_spread_choice(topo).n_threads == topo.n_hw_threads

    def test_packed_fills_cores(self, testbox):
        placement = os_packed_choice(testbox.topology, 4)
        assert placement.threads_per_core() == {0: 2, 1: 2}

    def test_spread_crosses_sockets(self, testbox):
        placement = os_spread_choice(testbox.topology, 4)
        assert placement.active_sockets() == (0, 1)

    def test_range_validated(self, testbox):
        with pytest.raises(ReproError):
            os_packed_choice(testbox.topology, 0)
        with pytest.raises(ReproError):
            os_spread_choice(testbox.topology, 99)


class TestRegressionModel:
    def test_amdahl_curve_recovered(self):
        model = RegressionModel(
            t1=10.0, parallel_fraction=0.9, kappa=0.0,
            training_counts=(1, 2, 4), training_cost_s=17.0,
        )
        assert model.predicted_time(1) == pytest.approx(10.0)
        assert model.predicted_time(10) == pytest.approx(10.0 * (0.1 + 0.09))

    def test_contention_term_creates_a_peak(self):
        model = RegressionModel(
            t1=10.0, parallel_fraction=0.99, kappa=0.01,
            training_counts=(1, 2, 4), training_cost_s=0.1,
        )
        best = model.best_thread_count(64)
        assert 2 < best < 64  # the kappa term turns the curve back up

    def test_validation(self):
        model = RegressionModel(1.0, 0.9, 0.0, (1, 2, 3), 1.0)
        with pytest.raises(ReproError):
            model.predicted_time(0)
        with pytest.raises(ReproError):
            model.best_thread_count(0)


class TestFitRegression:
    @pytest.fixture(scope="class")
    def spec(self):
        return WorkloadSpec(
            name="regress-unit", work_ginstr=80.0, cpi=0.5, l1_bpi=6.0,
            dram_bpi=1.0, working_set_mib=8.0, parallel_fraction=0.96,
            load_balance=0.8,
        )

    def test_recovers_parallel_fraction(self, testbox, spec):
        model = fit_regression_baseline(
            testbox, spec, training_counts=(1, 2, 3, 4), noise=NO_NOISE
        )
        assert model.parallel_fraction == pytest.approx(0.96, abs=0.05)
        assert model.training_cost_s > 0

    def test_choice_returns_spread_placement(self, testbox, spec):
        placement, model = regression_choice(testbox, spec, noise=NO_NOISE)
        assert 1 <= placement.n_threads <= testbox.topology.n_hw_threads
        assert model.training_counts == (1, 2, 3, 4)

    def test_needs_enough_counts(self, testbox, spec):
        with pytest.raises(ReproError, match="three"):
            fit_regression_baseline(testbox, spec, training_counts=(1, 2))
        with pytest.raises(ReproError, match="single-thread"):
            fit_regression_baseline(testbox, spec, training_counts=(2, 3, 4))

    def test_duplicate_counts_rejected(self, testbox, spec):
        """A duplicate run adds no information but double-weights its
        point; the error names the machine and the offending counts."""
        with pytest.raises(ReproError) as exc:
            fit_regression_baseline(
                testbox, spec, training_counts=(1, 2, 2, 4, 4)
            )
        message = str(exc.value)
        assert "TESTBOX" in message
        assert "duplicate" in message
        assert "[2, 4]" in message

    def test_sub_one_counts_rejected(self, testbox, spec):
        with pytest.raises(ReproError) as exc:
            fit_regression_baseline(
                testbox, spec, training_counts=(0, 1, 2, 3)
            )
        message = str(exc.value)
        assert "TESTBOX" in message
        assert ">= 1" in message and "[0]" in message

    def test_over_capacity_counts_rejected(self, testbox, spec):
        capacity = testbox.topology.n_hw_threads
        with pytest.raises(ReproError) as exc:
            fit_regression_baseline(
                testbox, spec, training_counts=(1, 2, capacity + 1)
            )
        message = str(exc.value)
        assert "TESTBOX" in message
        assert str(capacity) in message
        assert str(capacity + 1) in message

    def test_blind_to_placement_effects(self, testbox):
        """The baseline's defining weakness: it cannot tell placements
        of the same thread count apart."""
        io_hostile = WorkloadSpec(
            name="blind-unit", work_ginstr=60.0, cpi=0.5, l1_bpi=6.0,
            dram_bpi=4.0, working_set_mib=60.0, parallel_fraction=0.99,
            numa_local_fraction=0.2,
        )
        placement, model = regression_choice(testbox, io_hostile, noise=NO_NOISE)
        # It always answers with the spread policy at its chosen count —
        # no mechanism to prefer packing even when packing would win.
        from repro.core.sweep import spread_placement

        assert placement.hw_thread_ids == spread_placement(
            testbox.topology, placement.n_threads
        ).hw_thread_ids
