"""Tests for the event-driven online scheduling service."""

import pytest

from repro.errors import ReproError
from repro.online import OnlineScheduler, poisson_trace, replay_trace
from repro.online.policies import PlacementPolicy
from repro.rack.model import Assignment
from repro.rack.scheduler import free_context_placement

from tests.online.conftest import make_description


@pytest.fixture(scope="module")
def result(rack, pool):
    trace = poisson_trace(pool, n_jobs=20, rate_per_s=0.5, seed=7)
    return OnlineScheduler(rack, policy="predicted-slowdown").run(trace)


class TestRun:
    def test_every_job_completes(self, result):
        assert len(result.completed) == 20
        assert len(result.timeline.entries) == 20
        assert result.stats.arrivals == 20
        assert result.stats.departures == 20

    def test_decisions_are_recorded(self, result):
        assert result.stats.decisions == len(result.decisions) == 20
        for decision in result.decisions:
            assert decision.kind == "place"
            assert decision.predicted_total_s > 0
            assert decision.n_threads >= 1

    def test_slowdown_is_normalised_turnaround(self, result):
        job = result.completed[0]
        expected = (job.end_s - job.arrival_s) / job.solo_reference_s
        assert job.slowdown == pytest.approx(expected)
        assert result.mean_slowdown > 0
        assert result.p95_slowdown >= result.mean_slowdown * 0.5

    def test_utilisation_and_makespan(self, result):
        assert 0 < result.utilisation <= 1
        assert result.makespan_s >= max(e.end_s for e in result.timeline.entries)

    def test_queue_pressure_is_visible(self, rack, pool):
        """A burst wider than the fleet must defer some jobs."""
        records = [
            {"workload": "mem", "arrival_s": 0.0, "job": f"m{i}"} for i in range(3)
        ]
        trace = replay_trace(records, {w.name: w for w in pool})
        run = OnlineScheduler(rack, policy="first-fit").run(trace)
        assert run.stats.deferrals > 0
        assert len(run.completed) == 3

    def test_departure_repredicts_survivors(self, rack, pool):
        """When a co-runner leaves, survivors speed up: their recorded
        end time must not exceed the prediction made at admission."""
        pool_map = {w.name: w for w in pool}
        records = [
            {"workload": "mem", "arrival_s": 0.0, "job": "stay"},
            {"workload": "cpu", "arrival_s": 0.0, "job": "leave"},
        ]
        trace = replay_trace(records, pool_map)
        run = OnlineScheduler(rack, policy="predicted-slowdown").run(trace)
        stay = next(d for d in run.decisions if d.job_name == "stay")
        entry = run.timeline.entry_for("stay")
        assert entry.end_s <= stay.time_s + stay.predicted_total_s * (1 + 1e-9)

    def test_stats_registry_merges(self, result):
        data = result.stats.metrics.data()
        assert data["counters"]["online.arrivals"] == 20
        assert "online.decision_us" in data["histograms"]
        assert result.stats.summary().startswith("online scheduler stats:")
        assert "decisions" in result.summary()

    def test_hysteresis_validation(self, rack):
        with pytest.raises(ReproError, match="hysteresis"):
            OnlineScheduler(rack, hysteresis=-0.1)


class TestSimulatedClockSampling:
    def test_recorder_samples_per_simulated_window(self, rack, pool):
        from repro.obs.metrics import Metrics
        from repro.obs.timeseries import TimeSeriesRecorder

        trace = poisson_trace(pool, n_jobs=20, rate_per_s=0.5, seed=7)
        recorder = TimeSeriesRecorder(Metrics(), interval_s=10.0)
        run = OnlineScheduler(rack, policy="predicted-slowdown").run(
            trace, recorder=recorder
        )
        names = {s.name for s in recorder.all_series()}
        # The tentpole quartet: queue depth, decision-latency
        # percentiles, admission rate, mean predicted slowdown.
        assert "online.queue_depth" in names
        assert "online.decision_us.p99" in names
        assert "online.arrivals" in names
        assert "online.slowdown.mean" in names
        arrivals = recorder.series("online.arrivals")
        # Samples land on simulated-window boundaries, one per window,
        # plus one final end-of-run sample closing the partial window.
        times = [t for t, _ in arrivals.points()]
        on_boundary = [t for t in times if t % 10.0 == 0.0]
        assert len(on_boundary) >= len(times) - 1
        assert times == sorted(times)
        assert times[-1] >= run.makespan_s
        # Cumulative counters are monotone and end at the run total.
        values = arrivals.values()
        assert values == sorted(values)
        assert values[-1] == 20

    def test_recorder_registry_is_the_run_registry(self, rack, pool):
        from repro.obs.metrics import Metrics
        from repro.obs.timeseries import TimeSeriesRecorder

        trace = poisson_trace(pool, n_jobs=5, rate_per_s=0.5, seed=3)
        recorder = TimeSeriesRecorder(Metrics(), interval_s=30.0)
        run = OnlineScheduler(rack).run(trace, recorder=recorder)
        assert recorder.registry.counter("online.arrivals").value == 5
        assert run.stats.arrivals == 5

    def test_sampling_does_not_change_the_schedule(self, rack, pool):
        from repro.obs.metrics import Metrics
        from repro.obs.timeseries import TimeSeriesRecorder

        trace = poisson_trace(pool, n_jobs=12, rate_per_s=0.5, seed=11)
        plain = OnlineScheduler(rack).run(trace)
        sampled = OnlineScheduler(rack).run(
            trace, recorder=TimeSeriesRecorder(Metrics(), interval_s=5.0)
        )
        assert [
            (d.job_name, d.machine_name, d.hw_thread_ids)
            for d in plain.decisions
        ] == [
            (d.job_name, d.machine_name, d.hw_thread_ids)
            for d in sampled.decisions
        ]
        assert plain.makespan_s == sampled.makespan_s


class _NarrowPacker(PlacementPolicy):
    """Deliberately bad: everything on node-0, four threads each.

    Used to manufacture a fleet state the migrator should fix.
    """

    name = "narrow-packer"

    def admit(self, fleet, workloads):
        placed = []
        machine = self.core.rack.machines[0]
        for workload in workloads:
            placement = free_context_placement(
                machine, fleet.occupied(machine.name), 4
            )
            if placement is None:
                return placed, list(workloads[len(placed):])
            fleet.place(workload, machine.name, placement)
            placed.append(Assignment(workload, machine.name, placement))
        return placed, []


class TestMigration:
    def trace(self, pool):
        """One long DRAM job stuck on a 4-thread placement, plus a
        short compute job whose departure triggers the reschedule
        check.  Once alone, the long job is predicted ~17% faster on a
        full-width placement — above the 10% hysteresis bar."""
        records = [
            {"workload": "mem", "arrival_s": 0.0, "job": "hog"},
            {"workload": "cpu", "arrival_s": 0.0, "job": "short"},
        ]
        return replay_trace(records, {w.name: w for w in pool})

    def test_migration_relieves_bad_placement(self, rack, pool):
        stuck = OnlineScheduler(rack, policy=_NarrowPacker()).run(self.trace(pool))
        moved = OnlineScheduler(
            rack, policy=_NarrowPacker(), migrate=True, hysteresis=0.1
        ).run(self.trace(pool))
        assert stuck.stats.migrations == 0
        assert moved.stats.migrations >= 1
        migration = next(d for d in moved.decisions if d.kind == "migrate")
        assert migration.job_name == "hog"
        assert migration.n_threads > 4  # widened out of the bad placement
        assert moved.makespan_s < stuck.makespan_s

    def test_high_hysteresis_blocks_migration(self, rack, pool):
        run = OnlineScheduler(
            rack, policy=_NarrowPacker(), migrate=True, hysteresis=10.0
        ).run(self.trace(pool))
        assert run.stats.migrations == 0
