"""Tests for arrival-trace generation and replay."""

import pytest

from repro.errors import ReproError
from repro.online.trace import (
    ArrivalTrace,
    Job,
    diurnal_trace,
    poisson_trace,
    replay_trace,
)

from tests.online.conftest import make_description


@pytest.fixture(scope="module")
def small_pool():
    return [make_description("alpha"), make_description("beta")]


class TestGenerators:
    def test_same_seed_same_trace(self, small_pool):
        a = poisson_trace(small_pool, n_jobs=20, rate_per_s=1.0, seed=42)
        b = poisson_trace(small_pool, n_jobs=20, rate_per_s=1.0, seed=42)
        assert a.to_records() == b.to_records()

    def test_different_seed_different_trace(self, small_pool):
        a = poisson_trace(small_pool, n_jobs=20, rate_per_s=1.0, seed=1)
        b = poisson_trace(small_pool, n_jobs=20, rate_per_s=1.0, seed=2)
        assert a.to_records() != b.to_records()

    def test_jobs_are_ordered_and_uniquely_named(self, small_pool):
        trace = poisson_trace(small_pool, n_jobs=50, rate_per_s=2.0, seed=0)
        arrivals = [j.arrival_s for j in trace.jobs]
        assert arrivals == sorted(arrivals)
        names = [j.name for j in trace.jobs]
        assert len(set(names)) == len(names)
        assert len(trace) == 50 and trace.duration_s > 0

    def test_clone_keeps_prediction_inputs(self, small_pool):
        trace = poisson_trace(small_pool, n_jobs=4, rate_per_s=1.0, seed=0)
        job = trace.jobs[0]
        original = {w.name: w for w in small_pool}[job.spec_name]
        assert job.workload.demands == original.demands
        assert job.workload.t1 == original.t1
        assert job.workload.name != original.name

    def test_diurnal_rate_modulation_is_deterministic(self, small_pool):
        a = diurnal_trace(small_pool, 30, mean_rate_per_s=1.0, period_s=60, seed=5)
        b = diurnal_trace(small_pool, 30, mean_rate_per_s=1.0, period_s=60, seed=5)
        assert a.to_records() == b.to_records()
        assert a.kind == "diurnal"

    def test_generator_validation(self, small_pool):
        with pytest.raises(ReproError, match="non-empty"):
            poisson_trace([], 5, 1.0)
        with pytest.raises(ReproError, match="at least one job"):
            poisson_trace(small_pool, 0, 1.0)
        with pytest.raises(ReproError, match="positive"):
            poisson_trace(small_pool, 5, 0.0)
        with pytest.raises(ReproError, match="amplitude"):
            diurnal_trace(small_pool, 5, 1.0, 60.0, amplitude=1.5)
        with pytest.raises(ReproError, match="period"):
            diurnal_trace(small_pool, 5, 1.0, 0.0)


class TestReplay:
    def test_roundtrip(self, small_pool):
        trace = poisson_trace(small_pool, n_jobs=10, rate_per_s=1.0, seed=3)
        pool_map = {w.name: w for w in small_pool}
        rebuilt = replay_trace(trace.to_records(), pool_map)
        assert rebuilt.to_records() == trace.to_records()
        assert rebuilt.kind == "replay"

    def test_unknown_pool_workload_named(self, small_pool):
        pool_map = {w.name: w for w in small_pool}
        with pytest.raises(ReproError, match="ghost"):
            replay_trace([{"workload": "ghost", "arrival_s": 0.0}], pool_map)

    def test_malformed_record_rejected(self, small_pool):
        pool_map = {w.name: w for w in small_pool}
        with pytest.raises(ReproError, match="record 0"):
            replay_trace([{"arrival_s": 1.0}], pool_map)


class TestValidation:
    def test_negative_arrival_rejected(self):
        with pytest.raises(ReproError, match="negative"):
            Job(make_description("w"), arrival_s=-1.0, spec_name="w")

    def test_trace_rejects_unordered_jobs(self):
        jobs = (
            Job(make_description("a"), 5.0, "a"),
            Job(make_description("b"), 1.0, "b"),
        )
        with pytest.raises(ReproError, match="ordered"):
            ArrivalTrace(jobs=jobs)

    def test_trace_rejects_duplicate_names(self):
        jobs = (
            Job(make_description("a"), 0.0, "a"),
            Job(make_description("a"), 1.0, "a"),
        )
        with pytest.raises(ReproError, match="duplicate"):
            ArrivalTrace(jobs=jobs)

    def test_empty_trace_rejected(self):
        with pytest.raises(ReproError, match="at least one"):
            ArrivalTrace(jobs=())

    def test_as_request_bridge(self):
        job = Job(make_description("a"), 2.5, "a")
        request = job.as_request()
        assert request.arrival_s == 2.5
        assert request.description.name == "a"
