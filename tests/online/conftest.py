"""Shared fixtures for the online-scheduler tests.

The rack is two identical TESTBOX nodes — small enough that joint
predictions stay fast, big enough that placement choices matter.
"""

from __future__ import annotations

import pytest

from repro.core.description import DemandVector, WorkloadDescription
from repro.rack.model import Rack, RackMachine


@pytest.fixture(scope="package")
def rack(request):
    testbox = request.getfixturevalue("testbox")
    testbox_md = request.getfixturevalue("testbox_md")
    return Rack(
        machines=(
            RackMachine("node-0", testbox, testbox_md),
            RackMachine("node-1", testbox, testbox_md),
        )
    )


def make_description(name, inst=4.0, dram=2.0, p=0.98, t1=20.0):
    return WorkloadDescription(
        name=name,
        machine_name="TESTBOX",
        t1=t1,
        demands=DemandVector(inst_rate=inst, cache_bw={"L1": 20.0}, dram_bw=dram),
        parallel_fraction=p,
        load_balance=0.8,
    )


@pytest.fixture(scope="package")
def pool():
    """A small mixed pool: one DRAM hog, one compute job, one middle."""
    return [
        make_description("mem", inst=2.0, dram=18.0),
        make_description("cpu", inst=6.0, dram=0.5, t1=8.0),
        make_description("mid"),
    ]
