"""Tests for the discrete-event loop primitives."""

import pytest

from repro.errors import ReproError
from repro.online.events import Event, EventKind, EventLog, EventLoop


class TestEvent:
    def test_negative_time_rejected(self):
        with pytest.raises(ReproError, match="negative"):
            Event(-1.0, EventKind.ARRIVAL, "j")

    def test_kind_processing_order(self):
        """At equal timestamps: departures, then arrivals, then reschedules."""
        assert EventKind.DEPARTURE < EventKind.ARRIVAL < EventKind.RESCHEDULE


class TestEventLoop:
    def test_pops_in_time_order(self):
        loop = EventLoop()
        loop.push(Event(5.0, EventKind.ARRIVAL, "b"))
        loop.push(Event(1.0, EventKind.ARRIVAL, "a"))
        assert loop.pop().job_name == "a"
        assert loop.pop().job_name == "b"

    def test_departures_precede_arrivals_at_equal_time(self):
        loop = EventLoop()
        loop.push(Event(3.0, EventKind.ARRIVAL, "in"))
        loop.push(Event(3.0, EventKind.RESCHEDULE, "re"))
        loop.push(Event(3.0, EventKind.DEPARTURE, "out"))
        names = [loop.pop().job_name for _ in range(3)]
        assert names == ["out", "in", "re"]

    def test_equal_keys_pop_in_push_order(self):
        loop = EventLoop()
        for name in ("first", "second", "third"):
            loop.push(Event(1.0, EventKind.ARRIVAL, name))
        assert [loop.pop().job_name for _ in range(3)] == [
            "first", "second", "third",
        ]

    def test_time_is_monotonic(self):
        loop = EventLoop()
        loop.push(Event(10.0, EventKind.ARRIVAL, "a"))
        loop.pop()
        assert loop.now == 10.0
        with pytest.raises(ReproError, match="already"):
            loop.push(Event(5.0, EventKind.DEPARTURE, "late"))

    def test_pop_empty_raises(self):
        with pytest.raises(ReproError, match="empty"):
            EventLoop().pop()

    def test_peek_and_len(self):
        loop = EventLoop()
        assert loop.peek() is None and not loop
        loop.push(Event(1.0, EventKind.ARRIVAL, "a"))
        assert loop.peek().job_name == "a"
        assert len(loop) == 1 and bool(loop)


class TestEventLog:
    def test_records_and_equality(self):
        a, b = EventLog(), EventLog()
        event = Event(1.5, EventKind.ARRIVAL, "j", version=3)
        a.append(event)
        assert a != b
        b.append(event)
        assert a == b
        assert a.records == [(1.5, "ARRIVAL", "j")]
        assert len(a) == 1
