"""Migration edge cases: zero hysteresis, simultaneous departures, and
departure re-prediction against a warm prediction store.

The contract under test: the event loop's migration decisions are a
pure function of fleet state — so a zero hysteresis bar is legal (any
predicted gain moves a job), tied jobs finishing at the same instant
drain deterministically, and wiring a :class:`PredictionStore` under
the rack core never changes a single decision, only how it is costed.
"""

from __future__ import annotations

import pytest

from repro.io import PredictionStore
from repro.online import OnlineScheduler, replay_trace
from repro.online.policies import PlacementPolicy
from repro.rack.model import Assignment
from repro.rack.scheduler import free_context_placement

from tests.online.conftest import make_description


class _NarrowPacker(PlacementPolicy):
    """Everything on node-0, four threads each — manufactures a fleet
    state the migrator wants to fix (same trick as test_service)."""

    name = "narrow-packer-edges"

    def admit(self, fleet, workloads):
        placed = []
        machine = self.core.rack.machines[0]
        for workload in workloads:
            placement = free_context_placement(
                machine, fleet.occupied(machine.name), 4
            )
            if placement is None:
                return placed, list(workloads[len(placed):])
            fleet.place(workload, machine.name, placement)
            placed.append(Assignment(workload, machine.name, placement))
        return placed, []


def _mixed_trace(pool):
    records = [
        {"workload": "mem", "arrival_s": 0.0, "job": "hog"},
        {"workload": "cpu", "arrival_s": 0.0, "job": "short"},
    ]
    return replay_trace(records, {w.name: w for w in pool})


class TestZeroHysteresis:
    def test_zero_hysteresis_is_valid(self, rack):
        OnlineScheduler(rack, hysteresis=0.0)  # must not raise

    def test_zero_bar_migrates_at_least_as_much(self, rack, pool):
        lax = OnlineScheduler(
            rack, policy=_NarrowPacker(), migrate=True, hysteresis=0.0
        ).run(_mixed_trace(pool))
        strict = OnlineScheduler(
            rack, policy=_NarrowPacker(), migrate=True, hysteresis=0.1
        ).run(_mixed_trace(pool))
        assert lax.stats.migrations >= strict.stats.migrations
        assert lax.stats.migrations >= 1
        assert all(d.kind != "migrate" or d.job_name for d in lax.decisions)

    def test_zero_bar_run_is_deterministic(self, rack, pool):
        first = OnlineScheduler(
            rack, policy=_NarrowPacker(), migrate=True, hysteresis=0.0
        ).run(_mixed_trace(pool))
        second = OnlineScheduler(
            rack, policy=_NarrowPacker(), migrate=True, hysteresis=0.0
        ).run(_mixed_trace(pool))
        assert first.makespan_s == second.makespan_s
        assert [(d.kind, d.job_name) for d in first.decisions] == [
            (d.kind, d.job_name) for d in second.decisions
        ]


class TestEqualFinishTies:
    def _twin_trace(self):
        """Two identical jobs, same arrival, same placement width: they
        finish at exactly the same simulated instant."""
        twin = make_description("twin", t1=10.0)
        records = [
            {"workload": "twin", "arrival_s": 0.0, "job": "twin-a"},
            {"workload": "twin", "arrival_s": 0.0, "job": "twin-b"},
        ]
        return replay_trace(records, {"twin": twin})

    def test_simultaneous_departures_drain(self, rack):
        run = OnlineScheduler(rack, policy="predicted-slowdown").run(
            self._twin_trace()
        )
        assert len(run.completed) == 2
        finishes = sorted(j.end_s for j in run.completed)
        assert finishes[0] == pytest.approx(finishes[1])
        assert run.makespan_s == pytest.approx(finishes[1])

    def test_ties_with_migration_enabled(self, rack):
        # Equal-finish departures must not confuse the post-departure
        # reschedule check (each departure re-predicts survivors; at the
        # second tie event there are none left).
        run = OnlineScheduler(
            rack, policy="predicted-slowdown", migrate=True, hysteresis=0.0
        ).run(self._twin_trace())
        assert len(run.completed) == 2

    def test_tie_runs_are_deterministic(self, rack):
        first = OnlineScheduler(rack, policy="predicted-slowdown").run(
            self._twin_trace()
        )
        second = OnlineScheduler(rack, policy="predicted-slowdown").run(
            self._twin_trace()
        )
        assert [(j.name, j.end_s) for j in first.completed] == [
            (j.name, j.end_s) for j in second.completed
        ]


class TestDepartureRepredictionWithStore:
    """Departure-triggered re-predictions served from a PredictionStore
    must be bit-identical to freshly computed ones."""

    def _run(self, rack, pool, store):
        return OnlineScheduler(
            rack,
            policy=_NarrowPacker(),
            migrate=True,
            hysteresis=0.1,
            store=store,
        ).run(_mixed_trace(pool))

    def test_store_does_not_change_decisions(self, rack, pool, tmp_path):
        cold = self._run(rack, pool, store=None)
        store = PredictionStore(tmp_path / "preds")
        primed = self._run(rack, pool, store=store)
        # Second run over the same store: every joint re-prediction at
        # departure time is a store hit.
        warm = self._run(rack, pool, store=store)

        for other in (primed, warm):
            assert other.makespan_s == cold.makespan_s
            assert [(d.kind, d.job_name) for d in other.decisions] == [
                (d.kind, d.job_name) for d in cold.decisions
            ]
            assert [(j.name, j.end_s, j.slowdown) for j in other.completed] == [
                (j.name, j.end_s, j.slowdown) for j in cold.completed
            ]

    def test_store_round_trips_across_sessions(self, rack, pool, tmp_path):
        root = tmp_path / "preds"
        first = self._run(rack, pool, store=PredictionStore(root))
        assert any(root.rglob("*.json")), "run must have flushed shards"
        # A brand-new store instance (fresh process, same directory)
        # reproduces the run from disk records alone.
        second = self._run(rack, pool, store=PredictionStore(root))
        assert second.makespan_s == first.makespan_s
        assert [(j.name, j.end_s) for j in second.completed] == [
            (j.name, j.end_s) for j in first.completed
        ]
