"""Tests for the pluggable placement policies."""

import pytest

from repro.errors import ReproError
from repro.online.policies import (
    FirstFitPolicy,
    LoadBalancePolicy,
    PlacementPolicy,
    PredictedSlowdownPolicy,
    get_policy,
    policy_names,
)
from repro.rack.occupancy import FleetOccupancy
from repro.rack.scheduler import RackScheduler

from tests.online.conftest import make_description


@pytest.fixture
def bound(rack):
    """A fresh (core, fleet) pair plus a binder for any policy."""
    core = RackScheduler(rack)

    def bind(policy):
        policy.bind(core)
        return policy, FleetOccupancy(rack)

    return bind


class TestRegistry:
    def test_names(self):
        assert policy_names() == ["first-fit", "load-balance", "predicted-slowdown"]

    def test_get_policy_builds_instances(self):
        assert isinstance(get_policy("first-fit"), FirstFitPolicy)
        assert isinstance(get_policy("load-balance"), LoadBalancePolicy)
        assert isinstance(get_policy("predicted-slowdown"), PredictedSlowdownPolicy)

    def test_unknown_name_lists_known(self):
        with pytest.raises(ReproError, match="first-fit"):
            get_policy("random")

    def test_unbound_policy_raises(self, rack):
        with pytest.raises(ReproError, match="not bound"):
            FirstFitPolicy().admit(FleetOccupancy(rack), [make_description("w")])

    def test_negative_refinement_rejected(self):
        with pytest.raises(ReproError, match="negative"):
            PredictedSlowdownPolicy(refinement_rounds=-1)


class TestFirstFit:
    def test_takes_all_free_contexts_of_first_machine(self, bound):
        policy, fleet = bound(FirstFitPolicy())
        placed, remaining = policy.admit(fleet, [make_description("w")])
        assert not remaining
        (assignment,) = placed
        assert assignment.machine_name == "node-0"
        assert assignment.placement.n_threads == 16

    def test_head_of_line_blocking(self, bound):
        policy, fleet = bound(FirstFitPolicy())
        batch = [make_description(f"w{i}") for i in range(3)]
        placed, remaining = policy.admit(fleet, batch)
        # Two jobs fill both machines; the third blocks behind them.
        assert [a.workload.name for a in placed] == ["w0", "w1"]
        assert [w.name for w in remaining] == ["w2"]
        assert {a.machine_name for a in placed} == {"node-0", "node-1"}


class TestLoadBalance:
    def test_prefers_emptiest_machine_at_half_width(self, bound):
        policy, fleet = bound(LoadBalancePolicy())
        placed, _ = policy.admit(fleet, [make_description("a")])
        assert placed[0].placement.n_threads == 8
        placed2, _ = policy.admit(fleet, [make_description("b")])
        # node-0 has 8 free, node-1 has 16: the emptier machine wins.
        assert placed2[0].machine_name == "node-1"


class TestPredictedSlowdown:
    def test_memory_hogs_do_not_share_a_machine(self, bound):
        policy, fleet = bound(PredictedSlowdownPolicy())
        hogs = [
            make_description("hog-a", inst=2.0, dram=25.0),
            make_description("hog-b", inst=2.0, dram=25.0),
        ]
        placed, remaining = policy.admit(fleet, hogs)
        assert not remaining
        machines = {a.machine_name for a in placed}
        assert machines == {"node-0", "node-1"}

    def test_no_head_of_line_blocking(self, bound):
        """A batch too wide for the fleet skips the overflow, not the tail."""
        policy, fleet = bound(PredictedSlowdownPolicy(refinement_rounds=0))
        batch = [make_description(f"w{i}") for i in range(33)]
        placed, remaining = policy.admit(fleet, batch)
        assert len(placed) == 32 and len(remaining) == 1

    def test_custom_policy_subclass(self, bound):
        """The interface is open: a subclass slots into the same harness."""

        class Narrow(PlacementPolicy):
            name = "narrow"

            def admit(self, fleet, workloads):
                from repro.rack.scheduler import free_context_placement

                core = self._core()
                placed = []
                for workload in workloads:
                    machine = core.rack.machines[0]
                    placement = free_context_placement(
                        machine, fleet.occupied(machine.name), 1
                    )
                    if placement is None:
                        return placed, list(workloads[len(placed):])
                    from repro.rack.model import Assignment

                    fleet.place(workload, machine.name, placement)
                    placed.append(Assignment(workload, machine.name, placement))
                return placed, []

        policy, fleet = bound(Narrow())
        placed, _ = policy.admit(fleet, [make_description("x")])
        assert placed[0].placement.n_threads == 1
