"""Property tests: online vs batch equivalence, and determinism.

The anti-drift guarantee of this subsystem: a cold-start arrival batch
(everything at ``t=0``, empty fleet, no departures in between) must be
scheduled *identically* — same machines, same hardware threads, same
predicted durations, bit for bit — by the online service under the
predicted-slowdown policy and by the offline
:class:`~repro.rack.scheduler.RackScheduler`.  Both paths execute the
same ``admit_batch`` decision core over the same
:class:`~repro.rack.occupancy.FleetOccupancy`, so any divergence means
someone forked the logic.

Plus the determinism property the trace generators promise: the same
seed and pool produce the same trace, and running it twice produces
identical event logs and decision sequences.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.online import OnlineScheduler, poisson_trace, replay_trace
from repro.rack.scheduler import RackScheduler

from tests.online.conftest import make_description

workload_params = st.tuples(
    st.floats(1.0, 6.0),      # inst_rate
    st.floats(0.0, 10.0),     # dram_bw
    st.floats(0.5, 0.999),    # parallel_fraction
    st.floats(5.0, 50.0),     # t1
)

batches = st.lists(workload_params, min_size=1, max_size=4)


def build_batch(params):
    return [
        make_description(f"job-{i:02d}", inst=inst, dram=dram, p=p, t1=t1)
        for i, (inst, dram, p, t1) in enumerate(params)
    ]


@settings(max_examples=10, deadline=None)
@given(params=batches)
def test_cold_start_matches_batch_scheduler(rack, params):
    batch = build_batch(params)
    offline = RackScheduler(rack).schedule(batch)

    records = [
        {"workload": w.name, "arrival_s": 0.0, "job": w.name} for w in batch
    ]
    trace = replay_trace(records, {w.name: w for w in batch})
    online = OnlineScheduler(rack, policy="predicted-slowdown").run(trace)

    assert len(online.decisions) == len(batch)
    for decision in online.decisions:
        assignment = offline.assignment_for(decision.job_name)
        assert decision.machine_name == assignment.machine_name
        assert decision.hw_thread_ids == tuple(assignment.placement.hw_thread_ids)
        # Durations, not just placements: both sides re-predict the
        # final co-schedule with the same pure predictor.
        assert decision.predicted_total_s == offline.predicted_times[decision.job_name]


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_same_seed_reproduces_the_run(rack, pool, seed):
    trace_a = poisson_trace(pool, n_jobs=8, rate_per_s=0.5, seed=seed)
    trace_b = poisson_trace(pool, n_jobs=8, rate_per_s=0.5, seed=seed)
    assert trace_a.to_records() == trace_b.to_records()

    run_a = OnlineScheduler(rack, policy="predicted-slowdown").run(trace_a)
    run_b = OnlineScheduler(rack, policy="predicted-slowdown").run(trace_b)
    assert run_a.event_log == run_b.event_log
    assert run_a.decisions == run_b.decisions
    assert run_a.makespan_s == run_b.makespan_s


def test_cold_start_equivalence_with_contended_batch(rack):
    """A deterministic pinned case on top of the property: DRAM hogs
    plus compute jobs, where placement genuinely matters."""
    batch = [
        make_description("hog-a", inst=2.0, dram=25.0),
        make_description("hog-b", inst=2.0, dram=25.0),
        make_description("cpu-a", inst=6.0, dram=0.5),
        make_description("cpu-b", inst=6.0, dram=0.5),
    ]
    offline = RackScheduler(rack).schedule(batch)
    records = [
        {"workload": w.name, "arrival_s": 0.0, "job": w.name} for w in batch
    ]
    trace = replay_trace(records, {w.name: w for w in batch})
    online = OnlineScheduler(rack, policy="predicted-slowdown").run(trace)
    placements = {
        d.job_name: (d.machine_name, d.hw_thread_ids) for d in online.decisions
    }
    for assignment in offline.assignments:
        name = assignment.workload.name
        assert placements[name] == (
            assignment.machine_name,
            tuple(assignment.placement.hw_thread_ids),
        )
