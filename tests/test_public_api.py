"""The public API surface, as documented.

These tests execute the README/docs entry points verbatim-ish; if a
documented import or call signature changes, they fail before a user's
copy-paste does.
"""

import pytest


class TestTopLevelImports:
    def test_readme_imports(self):
        from repro import machines, catalog
        from repro.core import (
            generate_machine_description,
            WorkloadDescriptionGenerator,
            PandiaPredictor,
            enumerate_canonical,
            best_placement,
            rightsize,
            describe,
            CoSchedulePredictor,
            CoScheduledWorkload,
        )

        assert machines.get("X5-2").topology.n_hw_threads == 72
        assert len(catalog.names()) == 22

    def test_extension_imports(self):
        from repro.rack import (
            Rack,
            RackMachine,
            RackScheduler,
            TimelineScheduler,
            WorkloadRequest,
            validate_schedule,
            validate_timeline,
        )
        from repro.rack import FleetOccupancy, Resident
        from repro.online import (
            ArrivalTrace,
            EventLoop,
            OnlineScheduler,
            PlacementPolicy,
            diurnal_trace,
            get_policy,
            policy_names,
            poisson_trace,
            replay_trace,
        )
        from repro.perf import parse_perf_stat, pinned_run_command
        from repro.fit import Observation, fit_workload_spec
        from repro.io import DescriptionStore, load_surrogate, save_surrogate
        from repro.baselines import os_packed_choice, regression_choice
        from repro.search import SurrogateStrategy
        from repro.surrogate import (
            FEATURE_NAMES,
            PlacementFeaturizer,
            SurrogateModel,
            train_surrogate,
        )

    def test_version(self):
        import repro

        assert repro.__version__


class TestReadmeQuickstartFlow:
    """The README's library example, on the fast machine."""

    def test_flow(self):
        from repro import machines, catalog
        from repro.core import (
            describe,
            WorkloadDescriptionGenerator,
            PandiaPredictor,
            enumerate_canonical,
            best_placement,
        )

        machine = machines.get("TESTBOX")
        md = describe(machine)
        gen = WorkloadDescriptionGenerator(machine, md)
        wd = gen.generate(catalog.get("EP"))

        predictor = PandiaPredictor(md)
        placements = enumerate_canonical(machine.topology, max_threads=8)
        best, prediction = best_placement(predictor, wd, placements)
        assert best.n_threads >= 1
        assert prediction.speedup > 1.0


class TestDocsApiSnippets:
    def test_explain_snippet(self):
        from repro import machines, catalog
        from repro.analysis.explain import explain
        from repro.core import describe, PandiaPredictor, WorkloadDescriptionGenerator
        from repro.core.sweep import spread_placement

        machine = machines.get("TESTBOX")
        md = describe(machine)
        wd = WorkloadDescriptionGenerator(machine, md).generate(catalog.get("Swim"))
        traced = PandiaPredictor(md).predict(
            wd, spread_placement(machine.topology, 8), keep_trace=True
        )
        assert "Amdahl ceiling" in explain(traced)

    def test_store_snippet(self, tmp_path):
        from repro import machines
        from repro.core import generate_machine_description
        from repro.io import DescriptionStore

        machine = machines.get("TESTBOX")
        store = DescriptionStore(tmp_path)
        md = store.get_or_measure(
            "TESTBOX", lambda: generate_machine_description(machine)
        )
        assert md.machine_name == "TESTBOX"
