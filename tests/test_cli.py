"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestListing:
    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        for name in ("X5-2", "X4-2", "X3-2", "X2-4"):
            assert name in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "MD" in out and "equake" in out


class TestDescribe:
    def test_describe_machine(self, capsys):
        assert main(["describe-machine", "TESTBOX"]) == 0
        out = capsys.readouterr().out
        assert "core rate" in out and "DRAM" in out

    def test_describe_workload(self, capsys):
        assert main(["describe-workload", "TESTBOX", "EP"]) == 0
        out = capsys.readouterr().out
        assert "parallel fraction" in out
        assert "profiling cost" in out

    def test_unknown_machine_is_an_error(self, capsys):
        assert main(["describe-machine", "X99"]) == 1
        assert "error:" in capsys.readouterr().err


class TestPredict:
    def test_predict_spread(self, capsys):
        assert main(["predict", "TESTBOX", "EP", "--threads", "8"]) == 0
        out = capsys.readouterr().out
        assert "predicted speedup" in out

    def test_predict_packed(self, capsys):
        assert main(["predict", "TESTBOX", "EP", "--threads", "4", "--packed"]) == 0
        assert "predicted" in capsys.readouterr().out

    def test_too_many_threads_is_an_error(self, capsys):
        assert main(["predict", "TESTBOX", "EP", "--threads", "99"]) == 1
        assert "error:" in capsys.readouterr().err


class TestOptimize:
    def test_optimize(self, capsys):
        assert main(["optimize", "TESTBOX", "Swim", "--max-placements", "60"]) == 0
        out = capsys.readouterr().out
        assert "best predicted" in out
        assert "right-sized" in out

    def test_optimize_traced_writes_valid_trace_and_metrics(self, capsys, tmp_path):
        from repro import obs
        from repro.obs.export import validate_chrome_trace_file

        trace_path = tmp_path / "trace.json"
        try:
            assert main([
                "optimize", "TESTBOX", "Swim", "--max-placements", "60",
                "--trace-out", str(trace_path), "--metrics",
            ]) == 0
        finally:
            obs.disable()
            obs.reset()
        out = capsys.readouterr().out
        assert "metrics summary:" in out
        assert "search.requests" in out
        assert "predictor.iterations" in out
        counts = validate_chrome_trace_file(trace_path)
        assert counts["spans"] > 0
        import json

        names = {
            e["name"]
            for e in json.loads(trace_path.read_text())["traceEvents"]
        }
        # The acceptance triad: predictor iteration, cache and strategy
        # phases all present in one optimize trace.
        assert {"predictor.iteration", "search.cache", "search.strategy"} <= names


class TestCoschedule:
    def test_coschedule_two_workloads(self, capsys):
        assert main(["coschedule", "TESTBOX", "EP", "Swim"]) == 0
        out = capsys.readouterr().out
        assert "EP" in out and "Swim" in out
        assert "bottleneck" in out

    def test_too_many_workloads_for_sockets(self, capsys):
        assert main(["coschedule", "TESTBOX", "EP", "Swim", "MD"]) == 1
        assert "error:" in capsys.readouterr().err


class TestRack:
    def test_rack_scheduling(self, capsys):
        assert main(["rack", "TESTBOX", "EP", "Swim", "--nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "node-0" in out and "makespan" in out

    def test_rack_with_validation(self, capsys):
        assert main(
            ["rack", "TESTBOX", "EP", "MD", "--nodes", "2", "--validate"]
        ) == 0
        out = capsys.readouterr().out
        assert "measured makespan" in out


class TestExplain:
    def test_explain_mentions_bottleneck(self, capsys):
        assert main(["explain", "TESTBOX", "Swim", "--threads", "4"]) == 0
        out = capsys.readouterr().out
        assert "Amdahl ceiling" in out
        assert "most utilised resources" in out


class TestFit:
    def test_fit_from_timings(self, capsys):
        code = main(["fit", "TESTBOX", "1:10.0", "2:5.3", "4:2.9", "8:1.8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rms relative error" in out
        assert "fitted:" in out

    def test_malformed_observation(self, capsys):
        assert main(["fit", "TESTBOX", "banana"]) == 1
        assert "THREADS:SECONDS" in capsys.readouterr().err


class TestTimeline:
    def test_timeline_gantt(self, capsys):
        code = main(
            ["timeline", "TESTBOX", "EP", "MD", "--nodes", "2", "--stagger", "1.0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "#" in out  # gantt bars
        assert "makespan" in out
        assert "queueing delay" in out


class TestEvaluate:
    def test_evaluate_summary(self, capsys, tmp_path):
        svg = tmp_path / "scatter.svg"
        code = main(
            ["evaluate", "TESTBOX", "MD", "--max-placements", "30",
             "--svg", str(svg)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rank correlation" in out
        assert "placement regret" in out
        assert svg.exists() and svg.read_text().startswith("<svg")


class TestProfile:
    def test_profile_from_span_log(self, capsys, tmp_path):
        from repro import obs

        spans = tmp_path / "spans.jsonl"
        try:
            assert main([
                "optimize", "TESTBOX", "Swim", "--max-placements", "40",
                "--trace-out", str(spans),
            ]) == 0
        finally:
            obs.disable()
            obs.reset()
        capsys.readouterr()
        svg = tmp_path / "flame.svg"
        folded = tmp_path / "folded.txt"
        assert main([
            "profile", str(spans), "--top", "5",
            "--svg", str(svg), "--folded", str(folded),
        ]) == 0
        out = capsys.readouterr().out
        assert "self ms" in out
        assert "sim.fixed_point" in out
        assert "repro-flamegraph" in svg.read_text()
        lines = folded.read_text().splitlines()
        assert lines and all(" " in line for line in lines)

    def test_profile_empty_log_fails_cleanly(self, capsys, tmp_path):
        empty = tmp_path / "spans.jsonl"
        empty.write_text("")
        assert main(["profile", str(empty)]) == 1
        assert "no spans" in capsys.readouterr().out


class TestDashboard:
    def test_dashboard_acceptance(self, capsys, tmp_path):
        """One self-contained page: >=3 sparklines, percentile rows, and
        a flamegraph whose root equals the session wall time within 1%."""
        import re

        from repro import obs

        out_file = tmp_path / "dash.html"
        try:
            assert main([
                "dashboard", "TESTBOX", "EP", "--out", str(out_file),
                "--jobs", "8", "--max-placements", "40",
                "--sample-window", "10",
            ]) == 0
            session = [
                s for s in obs.tracer().spans()
                if s.name == "dashboard.session"
            ]
        finally:
            obs.disable()
            obs.reset()
        html = out_file.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert html.count('class="sparkline"') >= 3
        assert "<th>p50</th><th>p90</th><th>p99</th>" in html
        assert len(session) == 1
        root_ns = int(re.search(r'data-root-ns="(\d+)"', html).group(1))
        assert root_ns == pytest.approx(session[0].dur_ns, rel=0.01)

    def test_online_dashboard_out(self, capsys, tmp_path):
        out_file = tmp_path / "online.html"
        assert main([
            "online", "TESTBOX", "EP", "Swim", "--jobs", "10",
            "--dashboard-out", str(out_file), "--sample-window", "20",
        ]) == 0
        html = out_file.read_text()
        assert html.count('class="sparkline"') >= 3
        assert "online.slowdown" in html
        assert "wrote dashboard" in capsys.readouterr().out


class TestBench:
    def test_check_then_record_then_regress(self, capsys, tmp_path):
        import json
        import shutil
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[1]
        for record in repo_root.glob("BENCH_*.json"):
            shutil.copy(record, tmp_path / record.name)
        root = str(tmp_path)
        # No history yet: everything is new, check passes.
        assert main(["bench", "check", "--root", root]) == 0
        assert "new" in capsys.readouterr().out
        # Record a baseline, check passes against it.
        assert main(["bench", "record", "--root", root, "--label", "seed"]) == 0
        capsys.readouterr()
        assert main(["bench", "check", "--root", root]) == 0
        assert "0 regression(s)" in capsys.readouterr().out
        # Halve a higher-is-better headline: check now fails, naming it.
        record = tmp_path / "BENCH_predictor.json"
        document = json.loads(record.read_text())
        document["headline"]["speedup"] *= 0.4
        record.write_text(json.dumps(document))
        assert main(["bench", "check", "--root", root]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION predictor.batch_speedup" in out
        assert "tolerance" in out

    def test_record_with_no_bench_files_is_an_error(self, capsys, tmp_path):
        assert main(["bench", "record", "--root", str(tmp_path)]) == 1
        assert "nothing to record" in capsys.readouterr().err


class TestNoiseFlag:
    def test_noise_flag_changes_measurements(self, capsys):
        main(["--noise", "0.0", "describe-machine", "TESTBOX"])
        quiet = capsys.readouterr().out
        main(["--noise", "0.03", "describe-machine", "TESTBOX"])
        noisy = capsys.readouterr().out
        assert quiet != noisy
