"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestListing:
    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        for name in ("X5-2", "X4-2", "X3-2", "X2-4"):
            assert name in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "MD" in out and "equake" in out


class TestDescribe:
    def test_describe_machine(self, capsys):
        assert main(["describe-machine", "TESTBOX"]) == 0
        out = capsys.readouterr().out
        assert "core rate" in out and "DRAM" in out

    def test_describe_workload(self, capsys):
        assert main(["describe-workload", "TESTBOX", "EP"]) == 0
        out = capsys.readouterr().out
        assert "parallel fraction" in out
        assert "profiling cost" in out

    def test_unknown_machine_is_an_error(self, capsys):
        assert main(["describe-machine", "X99"]) == 1
        assert "error:" in capsys.readouterr().err


class TestPredict:
    def test_predict_spread(self, capsys):
        assert main(["predict", "TESTBOX", "EP", "--threads", "8"]) == 0
        out = capsys.readouterr().out
        assert "predicted speedup" in out

    def test_predict_packed(self, capsys):
        assert main(["predict", "TESTBOX", "EP", "--threads", "4", "--packed"]) == 0
        assert "predicted" in capsys.readouterr().out

    def test_too_many_threads_is_an_error(self, capsys):
        assert main(["predict", "TESTBOX", "EP", "--threads", "99"]) == 1
        assert "error:" in capsys.readouterr().err


class TestOptimize:
    def test_optimize(self, capsys):
        assert main(["optimize", "TESTBOX", "Swim", "--max-placements", "60"]) == 0
        out = capsys.readouterr().out
        assert "best predicted" in out
        assert "right-sized" in out

    def test_optimize_traced_writes_valid_trace_and_metrics(self, capsys, tmp_path):
        from repro import obs
        from repro.obs.export import validate_chrome_trace_file

        trace_path = tmp_path / "trace.json"
        try:
            assert main([
                "optimize", "TESTBOX", "Swim", "--max-placements", "60",
                "--trace-out", str(trace_path), "--metrics",
            ]) == 0
        finally:
            obs.disable()
            obs.reset()
        out = capsys.readouterr().out
        assert "metrics summary:" in out
        assert "search.requests" in out
        assert "predictor.iterations" in out
        counts = validate_chrome_trace_file(trace_path)
        assert counts["spans"] > 0
        import json

        names = {
            e["name"]
            for e in json.loads(trace_path.read_text())["traceEvents"]
        }
        # The acceptance triad: predictor iteration, cache and strategy
        # phases all present in one optimize trace.
        assert {"predictor.iteration", "search.cache", "search.strategy"} <= names


class TestCoschedule:
    def test_coschedule_two_workloads(self, capsys):
        assert main(["coschedule", "TESTBOX", "EP", "Swim"]) == 0
        out = capsys.readouterr().out
        assert "EP" in out and "Swim" in out
        assert "bottleneck" in out

    def test_too_many_workloads_for_sockets(self, capsys):
        assert main(["coschedule", "TESTBOX", "EP", "Swim", "MD"]) == 1
        assert "error:" in capsys.readouterr().err


class TestRack:
    def test_rack_scheduling(self, capsys):
        assert main(["rack", "TESTBOX", "EP", "Swim", "--nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "node-0" in out and "makespan" in out

    def test_rack_with_validation(self, capsys):
        assert main(
            ["rack", "TESTBOX", "EP", "MD", "--nodes", "2", "--validate"]
        ) == 0
        out = capsys.readouterr().out
        assert "measured makespan" in out


class TestExplain:
    def test_explain_mentions_bottleneck(self, capsys):
        assert main(["explain", "TESTBOX", "Swim", "--threads", "4"]) == 0
        out = capsys.readouterr().out
        assert "Amdahl ceiling" in out
        assert "most utilised resources" in out


class TestFit:
    def test_fit_from_timings(self, capsys):
        code = main(["fit", "TESTBOX", "1:10.0", "2:5.3", "4:2.9", "8:1.8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rms relative error" in out
        assert "fitted:" in out

    def test_malformed_observation(self, capsys):
        assert main(["fit", "TESTBOX", "banana"]) == 1
        assert "THREADS:SECONDS" in capsys.readouterr().err


class TestTimeline:
    def test_timeline_gantt(self, capsys):
        code = main(
            ["timeline", "TESTBOX", "EP", "MD", "--nodes", "2", "--stagger", "1.0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "#" in out  # gantt bars
        assert "makespan" in out
        assert "queueing delay" in out


class TestEvaluate:
    def test_evaluate_summary(self, capsys, tmp_path):
        svg = tmp_path / "scatter.svg"
        code = main(
            ["evaluate", "TESTBOX", "MD", "--max-placements", "30",
             "--svg", str(svg)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rank correlation" in out
        assert "placement regret" in out
        assert svg.exists() and svg.read_text().startswith("<svg")


class TestNoiseFlag:
    def test_noise_flag_changes_measurements(self, capsys):
        main(["--noise", "0.0", "describe-machine", "TESTBOX"])
        quiet = capsys.readouterr().out
        main(["--noise", "0.03", "describe-machine", "TESTBOX"])
        noisy = capsys.readouterr().out
        assert quiet != noisy
