"""Tests for the experiment infrastructure."""

import pytest

from repro.errors import ReproError
from repro.experiments.common import (
    DEFAULT,
    QUICK,
    ExperimentContext,
    ExperimentReport,
    Scale,
)
from repro.sim.noise import NoiseModel


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(scale=QUICK, noise=NoiseModel(sigma=0.01))


class TestScale:
    def test_quick_is_a_subset(self):
        assert len(QUICK.workloads()) < len(DEFAULT.workloads())
        assert QUICK.max_placements < DEFAULT.max_placements

    def test_default_covers_all_22(self):
        assert len(DEFAULT.workloads()) == 22

    def test_custom_scale(self):
        scale = Scale("tiny", 5, ("MD",))
        assert scale.workloads() == ["MD"]


class TestCaching:
    def test_machine_description_cached(self, context):
        assert context.machine_description("TESTBOX") is context.machine_description(
            "TESTBOX"
        )

    def test_workload_description_cached(self, context):
        a = context.description("TESTBOX", "MD")
        b = context.description("TESTBOX", "MD")
        assert a is b

    def test_measured_runs_cached(self, context):
        a = context.measured("TESTBOX", "MD")
        b = context.measured("TESTBOX", "MD")
        assert a is b


class TestPlacements:
    def test_includes_full_machine_anchor(self, context):
        placements = context.placements("TESTBOX")
        assert max(p.n_threads for p in placements) == 16

    def test_filters_respected(self, context):
        placements = context.placements("TESTBOX", max_sockets=1)
        assert all(len(p.active_sockets()) == 1 for p in placements)

    def test_max_cores_filter(self, context):
        placements = context.placements("TESTBOX", max_cores=3)
        assert all(len(p.threads_per_core()) <= 3 for p in placements)

    def test_no_duplicate_shapes(self, context):
        placements = context.placements("TESTBOX")
        keys = [p.canonical_key() for p in placements]
        assert len(keys) == len(set(keys))


class TestEvaluation:
    def test_evaluation_produces_series(self, context):
        evaluation = context.evaluation("TESTBOX", "MD")
        assert len(evaluation.outcomes) == len(context.placements("TESTBOX"))
        assert evaluation.errors().median_error >= 0

    def test_portability_evaluation_reuses_measurements(self, context):
        native = context.evaluation("TESTBOX", "MD")
        ported = context.evaluation("TESTBOX", "MD", description_machine="X3-2")
        measured_native = [o.measured_time_s for o in native.outcomes]
        measured_ported = [o.measured_time_s for o in ported.outcomes]
        assert measured_native == measured_ported
        predicted_native = [o.predicted_time_s for o in native.outcomes]
        predicted_ported = [o.predicted_time_s for o in ported.outcomes]
        assert predicted_native != predicted_ported


class TestReport:
    def test_render_contains_sections(self):
        report = ExperimentReport(
            experiment_id="x", title="T", paper_claim="C", body="B",
            headline={"metric": 1.0},
        )
        text = report.render()
        for token in ("== x: T ==", "paper: C", "B", "metric = 1.000"):
            assert token in text


class TestRegistry:
    def test_unknown_experiment_rejected(self):
        from repro.experiments.run_all import run_experiments

        with pytest.raises(ReproError, match="unknown experiment"):
            run_experiments(["fig99"])

    def test_registry_covers_every_artifact(self):
        from repro.experiments.run_all import REGISTRY

        assert set(REGISTRY) == {
            "fig1", "fig10", "fig11", "fig12", "fig13", "fig14",
            "sweep", "headline", "ablation", "scaling", "coschedule",
            "baselines",
        }
