"""Integration tests for the experiment runner CLI."""

import pytest

from repro.experiments.run_all import main


class TestMain:
    def test_single_experiment_with_outputs(self, tmp_path, capsys):
        out = tmp_path / "results.txt"
        html = tmp_path / "report.html"
        code = main(
            ["fig14", "--scale", "quick", "--out", str(out), "--html", str(html)]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "fig14" in stdout and "took" in stdout

        text = out.read_text()
        assert "Turbo Boost" in text
        page = html.read_text()
        assert page.startswith("<!DOCTYPE html>")
        assert "fig14" in page

    def test_measurement_cache_written(self, tmp_path, capsys):
        cache = tmp_path / "cache.jsonl"
        assert main(["fig14", "--scale", "quick", "--cache", str(cache)]) == 0
        capsys.readouterr()
        # fig14 itself uses stressors (not cached), so the file may be
        # absent; an experiment with timed runs must populate it.
        assert main(["fig1", "--scale", "quick", "--cache", str(cache)]) == 0
        capsys.readouterr()
        assert cache.exists()
        assert cache.read_text().strip()

    def test_unknown_id_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--scale", "nope"])
