"""Tests for the persistent measurement cache."""

import pytest

from repro.core.placement import Placement
from repro.errors import ReproError
from repro.experiments.cache import MeasurementCache, measurement_key
from repro.experiments.common import ExperimentContext, Scale
from repro.hardware.topology import MachineTopology
from repro.sim.noise import NoiseModel

TINY = Scale("tiny", 10, ("EP",))


class TestKey:
    @staticmethod
    def _spec(**overrides):
        from repro.workloads.spec import WorkloadSpec

        base = dict(name="W", work_ginstr=10.0, cpi=0.5)
        base.update(overrides)
        return WorkloadSpec(**base)

    def test_key_depends_on_shape_not_concrete_ids(self):
        topo = MachineTopology(2, 4, 2)
        noise = NoiseModel(sigma=0.01)
        left = Placement(topo, (0, 1))
        right = Placement(topo, (4, 5))  # mirrored shape
        spec = self._spec()
        assert measurement_key("M", spec, left, noise) == measurement_key(
            "M", spec, right, noise
        )

    def test_key_distinguishes_noise(self):
        topo = MachineTopology(2, 4, 2)
        p = Placement(topo, (0,))
        spec = self._spec()
        a = measurement_key("M", spec, p, NoiseModel(sigma=0.01, seed=0))
        b = measurement_key("M", spec, p, NoiseModel(sigma=0.01, seed=1))
        assert a != b

    def test_editing_the_spec_invalidates_the_key(self):
        """A changed catalog entry must not reuse stale measurements."""
        topo = MachineTopology(2, 4, 2)
        p = Placement(topo, (0,))
        noise = NoiseModel(sigma=0.01)
        a = measurement_key("M", self._spec(), p, noise)
        b = measurement_key("M", self._spec(work_growth=0.03), p, noise)
        assert a != b


class TestCacheFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = MeasurementCache(path)
        cache.put("k1", 1.5)
        cache.put("k2", 2.5)
        reloaded = MeasurementCache(path)
        assert reloaded.get("k1") == 1.5
        assert reloaded.get("k2") == 2.5
        assert len(reloaded) == 2

    def test_idempotent_put(self, tmp_path):
        cache = MeasurementCache(tmp_path / "c.jsonl")
        cache.put("k", 1.0)
        cache.put("k", 9.0)  # ignored: measurements are immutable
        assert cache.get("k") == 1.0

    def test_missing_key(self, tmp_path):
        cache = MeasurementCache(tmp_path / "c.jsonl")
        assert cache.get("nope") is None
        assert "nope" not in cache

    def test_corrupt_file_rejected_with_location(self, tmp_path):
        path = tmp_path / "c.jsonl"
        path.write_text('{"key": "a", "elapsed_s": 1.0}\nnot json\n')
        with pytest.raises(ReproError, match=":2"):
            MeasurementCache(path)

    def test_non_positive_time_rejected(self, tmp_path):
        cache = MeasurementCache(tmp_path / "c.jsonl")
        with pytest.raises(ReproError):
            cache.put("k", 0.0)


class TestContextIntegration:
    def test_second_context_reuses_measurements(self, tmp_path):
        path = tmp_path / "m.jsonl"
        first = ExperimentContext(scale=TINY, cache_path=str(path))
        runs_a = first.measured("TESTBOX", "EP")
        assert path.exists()
        cache = MeasurementCache(path)
        assert len(cache) == len(runs_a)

        second = ExperimentContext(scale=TINY, cache_path=str(path))
        runs_b = second.measured("TESTBOX", "EP")
        assert [t for _, t in runs_a] == [t for _, t in runs_b]

    def test_uncached_context_still_works(self):
        context = ExperimentContext(scale=TINY)
        assert context.measured("TESTBOX", "EP")
