"""Smoke tests for individual experiment artifacts at tiny scale."""

import pytest

from repro.experiments import fig01_md, fig14_turbo
from repro.experiments.common import ExperimentContext, Scale
from repro.sim.noise import NoiseModel

TINY = Scale("tiny", 20, ("MD", "EP"))


@pytest.fixture(scope="module")
def tiny_context():
    return ExperimentContext(scale=TINY, noise=NoiseModel(sigma=0.01))


class TestFig1:
    def test_report_structure(self, tiny_context):
        report = fig01_md.run(tiny_context)
        assert report.experiment_id == "fig1"
        assert "normalised speedup" in report.body
        assert "median error %" in report.body
        assert report.headline["median_error_percent"] >= 0

    def test_plot_has_both_series(self, tiny_context):
        report = fig01_md.run(tiny_context)
        assert ". measured" in report.body
        assert "x predicted" in report.body


class TestFig14:
    def test_turbo_ordering(self, tiny_context):
        report = fig14_turbo.run(tiny_context)
        h = report.headline
        # One free thread boosts above the background-pinned frequency.
        assert h["single_thread_boost_over_background"] > 1.0
        # Disabling turbo is a loss even at full occupancy.
        assert h["full_machine_penalty_for_disabling"] > 1.0

    def test_boost_matches_turbo_table(self, tiny_context):
        """The single-thread boost equals max-turbo / all-core-turbo."""
        report = fig14_turbo.run(tiny_context)
        machine = tiny_context.machine("X5-2")
        expected = machine.turbo.max_turbo_ghz / machine.turbo.all_core_turbo_ghz
        assert report.headline["single_thread_boost_over_background"] == pytest.approx(
            expected, rel=0.05
        )
