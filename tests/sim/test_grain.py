"""Discontinuous scaling from coarse parallel grains (Section 6.4)."""

import pytest

from repro.hardware import machines
from repro.sim.engine import Job, SimOptions, simulate
from repro.sim.noise import NO_NOISE
from repro.workloads import catalog
from repro.workloads.spec import WorkloadSpec

QUIET = SimOptions(noise=NO_NOISE)


class TestGrainWaste:
    def test_divisible_counts_waste_nothing(self):
        spec = WorkloadSpec(name="g", work_ginstr=1.0, cpi=0.5, parallel_grain=64)
        for k in (1, 2, 4, 8, 16, 32, 64):
            assert spec.grain_waste(k) == pytest.approx(1.0)

    def test_indivisible_counts_waste_slots(self):
        spec = WorkloadSpec(name="g", work_ginstr=1.0, cpi=0.5, parallel_grain=64)
        # 33..63 threads all need 2 barrier rounds of a 64-chunk loop.
        assert spec.grain_waste(33) == pytest.approx(2 * 33 / 64)
        assert spec.grain_waste(63) == pytest.approx(2 * 63 / 64)

    def test_no_grain_means_no_waste(self):
        spec = WorkloadSpec(name="g", work_ginstr=1.0, cpi=0.5)
        assert spec.grain_waste(7) == 1.0

    def test_grain_validated(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            WorkloadSpec(name="g", work_ginstr=1.0, cpi=0.5, parallel_grain=0)


class TestStaircaseScaling:
    """The paper: 'By the time 32 threads are reached there will be no
    further performance increase until 64 threads are available.'"""

    @pytest.fixture(scope="class")
    def bt_small(self):
        return catalog.get("BT-small")

    def _time(self, machine, spec, n):
        order = [c.hw_thread_ids[0] for c in machine.topology.cores]
        order += [c.hw_thread_ids[1] for c in machine.topology.cores]
        return simulate(machine, [Job(spec, tuple(order[:n]))], QUIET).job_results[0].elapsed_s

    def test_no_gain_between_grain_steps(self, bt_small):
        x5 = machines.get("X5-2")
        t32 = self._time(x5, bt_small, 32)
        t48 = self._time(x5, bt_small, 48)
        t64 = self._time(x5, bt_small, 64)
        # 33-63 threads buy nothing over 32 (modulo second-order effects
        # like frequency/SMT shifts); 64 threads finally help.
        assert t48 >= t32 * 0.95
        assert t64 < t32 * 0.85

    def test_pandia_cannot_model_the_staircase(self, bt_small):
        """The reproduction of the *limitation*: predictions are smooth,
        so the staircase shows up as error between grain steps."""
        from repro.core.machine_desc import describe
        from repro.core.sweep import spread_placement
        from repro.core.workload_desc import WorkloadDescriptionGenerator
        from repro.sim.noise import NoiseModel

        x5 = machines.get("X5-2")
        md = describe(x5, noise=NoiseModel(sigma=0.01, seed=7))
        generator = WorkloadDescriptionGenerator(x5, md, noise=NoiseModel(sigma=0.01, seed=7))
        wd = generator.generate(bt_small)
        from repro.core.predictor import PandiaPredictor

        predictor = PandiaPredictor(md)
        t48_pred = predictor.predict(wd, spread_placement(x5.topology, 48)).predicted_time_s
        t32_pred = predictor.predict(wd, spread_placement(x5.topology, 32)).predicted_time_s
        # Pandia predicts a smooth gain from 32 -> 48 threads...
        assert t48_pred < t32_pred * 0.9
        # ...but the measured staircase grants (nearly) none.
        t48_meas = self._time(x5, bt_small, 48)
        t32_meas = self._time(x5, bt_small, 32)
        assert t48_meas > t32_meas * 0.95
