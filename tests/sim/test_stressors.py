"""Tests for the stress applications (paper Section 3)."""

import pytest

from repro.hardware import machines
from repro.sim.engine import Job, SimOptions, simulate
from repro.sim.noise import NO_NOISE
from repro.sim import stressors

QUIET = SimOptions(noise=NO_NOISE)


class TestSpecs:
    def test_all_stressors_are_background(self):
        for spec in (
            stressors.cpu_stressor(),
            stressors.background_filler(),
            stressors.cache_stressor("L1"),
            stressors.dram_stressor(),
            stressors.remote_dram_stressor(0),
        ):
            assert spec.background

    def test_cache_stressor_targets_one_level(self):
        spec = stressors.cache_stressor("L2")
        assert spec.l2_bpi > 0
        assert spec.l1_bpi == 0 and spec.l3_bpi == 0 and spec.dram_bpi == 0

    def test_cache_stressor_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            stressors.cache_stressor("L7")

    def test_remote_dram_stressor_binds_node(self):
        spec = stressors.remote_dram_stressor(1)
        assert spec.memory_policy.kind == "bind"
        assert spec.memory_policy.nodes == (1,)

    def test_filler_touches_no_memory(self):
        filler = stressors.background_filler()
        assert filler.dram_bpi == 0
        assert all(v == 0 for k, v in filler.bpi_vector().items())


class TestSaturation:
    """Each stressor must actually saturate its target resource."""

    def test_cpu_stressor_saturates_core(self, testbox):
        sim = simulate(testbox, [Job(stressors.cpu_stressor(), (0,))], QUIET)
        load = sim.resource_loads[("core", 0)]
        cap = sim.resource_capacities[("core", 0)]
        assert load == pytest.approx(cap, rel=0.01)

    @pytest.mark.parametrize("level", ["L1", "L2", "L3"])
    def test_cache_stressor_saturates_link(self, testbox, level):
        sim = simulate(testbox, [Job(stressors.cache_stressor(level), (0,))], QUIET)
        key = ("cache_link", (level, 0))
        assert sim.resource_loads[key] == pytest.approx(
            sim.resource_capacities[key], rel=0.01
        )

    def test_dram_stressor_on_all_cores_saturates_node(self, testbox):
        tids = tuple(c.hw_thread_ids[0] for c in testbox.topology.cores_of_socket(0))
        sim = simulate(testbox, [Job(stressors.dram_stressor(nodes=(0,)), tids)], QUIET)
        assert sim.resource_loads[("dram", 0)] == pytest.approx(
            testbox.dram_gbs_per_node, rel=0.01
        )

    def test_remote_stressor_saturates_interconnect(self, testbox):
        tids = tuple(c.hw_thread_ids[0] for c in testbox.topology.cores_of_socket(1))
        sim = simulate(testbox, [Job(stressors.remote_dram_stressor(0), tids)], QUIET)
        assert sim.resource_loads[("link", (0, 1))] == pytest.approx(
            testbox.interconnect_gbs, rel=0.01
        )
