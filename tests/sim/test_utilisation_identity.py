"""The utilisation identity connecting substrate and model.

For an uncontended run, the engine's converged thread utilisation is
exactly ``amdahl_speedup / n`` — the same quantity Pandia uses as
``f_initial`` (Section 5, Figure 7a).  This is not a coincidence: both
derive from work/time accounting under scattered sequential sections,
and the identity is what makes Pandia's utilisation-scaled demands a
faithful model of the substrate's average demands.
"""

import pytest

from repro.core.amdahl import amdahl_speedup
from repro.sim.demand import DemandModel, JobSpecOnMachine
from repro.sim.engine import Job, SimOptions, simulate
from repro.sim.noise import NO_NOISE
from repro.workloads.spec import WorkloadSpec

QUIET = SimOptions(noise=NO_NOISE)


def uncontended_spec(p):
    return WorkloadSpec(
        name=f"ident-{p}", work_ginstr=50.0, cpi=0.5, l1_bpi=2.0,
        working_set_mib=0.5, parallel_fraction=p, load_balance=1.0,
    )


def converged_utilisation(machine, spec, tids):
    """Re-derive the engine's converged utilisation from its outputs."""
    result = simulate(machine, [Job(spec, tids)], QUIET)
    jr = result.job_results[0]
    # busy_i = work_i / rate_i; with symmetric threads work splits evenly.
    n = len(tids)
    work_each = jr.counters.instructions_g / n
    rate = jr.thread_rates[0]
    return (work_each / rate) / jr.elapsed_s


@pytest.mark.parametrize("p", [0.5, 0.8, 0.95, 0.99, 1.0])
@pytest.mark.parametrize("n", [2, 4])
def test_utilisation_equals_amdahl_over_n(testbox, p, n):
    spec = uncontended_spec(p)
    tids = tuple(testbox.topology.core(c).hw_thread_ids[0] for c in range(n))
    utilisation = converged_utilisation(testbox, spec, tids)
    expected = amdahl_speedup(p, n) / n
    assert utilisation == pytest.approx(expected, rel=1e-3)


def test_identity_feeds_demand_scaling(testbox):
    """The average resource demand the engine reports equals the naive
    demand scaled by that utilisation — Pandia's Section 5.1 rule."""
    spec = uncontended_spec(0.8)
    tids = (0, 1, 2, 3)
    result = simulate(testbox, [Job(spec, tids)], QUIET)
    jr = result.job_results[0]
    # Average L1 bandwidth over the run:
    avg_bw = jr.counters.cache_bandwidth("L1")
    # Naive demand: every thread at its instantaneous rate, scaled by f.
    f = amdahl_speedup(0.8, 4) / 4
    naive = sum(jr.thread_rates) * spec.l1_bpi
    assert avg_bw == pytest.approx(naive * f, rel=1e-3)
