"""Hand-computed checks of the engine's job-timing composition.

These pin the exact formulas of ``_job_timing`` (documented in
docs/substrate.md) on the cache-less FIG3 machine where per-thread
rates are trivially predictable.
"""

import pytest

from repro.sim.engine import Job, SimOptions, simulate
from repro.sim.noise import NO_NOISE
from repro.workloads.spec import WorkloadSpec

QUIET = SimOptions(noise=NO_NOISE)

# FIG3 cores run 10 instr/s; cpi 0.1 demands exactly 10.
RATE = 10.0


def make_spec(**overrides):
    base = dict(name="math", work_ginstr=100.0, cpi=0.1, working_set_mib=0.1)
    base.update(overrides)
    return WorkloadSpec(**base)


def run(fig3, spec, tids):
    return simulate(fig3, [Job(spec, tids)], QUIET).job_results[0]


class TestSequentialComposition:
    def test_pure_sequential(self, fig3):
        spec = make_spec(parallel_fraction=0.0)
        # W_seq = 100 split over 2 threads at rate 10 each:
        # T = (50/10) + (50/10) = 10 — scattered critical sections.
        result = run(fig3, spec, (0, 2))
        assert result.elapsed_s == pytest.approx(100.0 / RATE)

    def test_amdahl_blend(self, fig3):
        spec = make_spec(parallel_fraction=0.6)
        # T_seq = 40/10; T_par = 60/(2*10); total = 4 + 3 = 7.
        result = run(fig3, spec, (0, 2))
        assert result.elapsed_s == pytest.approx(7.0)


class TestLoadBalanceComposition:
    """Threads at different speeds: one alone (rate 10), two sharing a
    core (rate 5 each) on the toy machine's shared-capacity cores."""

    def _rates(self, fig3):
        spec = make_spec(parallel_fraction=1.0, load_balance=1.0)
        result = run(fig3, spec, (0, 4, 2))  # 0,4 share core 0; 2 alone
        return result

    def test_rates_split_as_expected(self, fig3):
        result = self._rates(fig3)
        assert sorted(result.thread_rates) == pytest.approx([5.0, 5.0, 10.0])

    def test_balanced_time_is_aggregate(self, fig3):
        spec = make_spec(parallel_fraction=1.0, load_balance=1.0)
        result = run(fig3, spec, (0, 4, 2))
        # Aggregate throughput 20: T = 100/20 = 5.
        assert result.elapsed_s == pytest.approx(5.0)

    def test_lockstep_time_is_gated_by_the_slowest(self, fig3):
        spec = make_spec(parallel_fraction=1.0, load_balance=0.0)
        result = run(fig3, spec, (0, 4, 2))
        # Each thread does 100/3 at the slowest rate 5: T = 6.67.
        assert result.elapsed_s == pytest.approx(100.0 / 3 / 5.0)

    def test_half_balanced_interpolates_linearly(self, fig3):
        spec = make_spec(parallel_fraction=1.0, load_balance=0.5)
        result = run(fig3, spec, (0, 4, 2))
        lock = 100.0 / 3 / 5.0
        bal = 5.0
        assert result.elapsed_s == pytest.approx(0.5 * lock + 0.5 * bal)


class TestWorkAccounting:
    def test_balanced_work_follows_rates(self, fig3):
        spec = make_spec(parallel_fraction=1.0, load_balance=1.0)
        result = run(fig3, spec, (0, 4, 2))
        # Counters: total work is exactly the spec's.
        assert result.counters.instructions_g == pytest.approx(100.0)

    def test_utilisation_feedback_converges(self, fig3):
        spec = make_spec(parallel_fraction=0.8, load_balance=0.0)
        sim = simulate(fig3, [Job(spec, (0, 4, 2))], QUIET)
        assert sim.outer_iterations < 40  # converged, not exhausted


class TestDramContention:
    def test_two_threads_share_a_saturated_node_evenly(self, fig3):
        # 20 B/instr at rate 10 wants 200 GB/s of a 100-capacity node.
        spec = make_spec(dram_bpi=20.0, parallel_fraction=1.0)
        result = run(fig3, spec, (0, 1))  # same socket -> same node
        rates = sorted(result.thread_rates)
        assert rates[0] == pytest.approx(rates[1], rel=1e-6)
        assert sum(rates) * 20.0 == pytest.approx(100.0, rel=1e-3)
