"""Tests for the ground-truth execution engine."""

import pytest

from repro.errors import SimulationError
from repro.hardware import machines
from repro.sim.engine import Job, SimOptions, simulate
from repro.sim.noise import NO_NOISE
from repro.workloads.spec import WorkloadSpec

QUIET = SimOptions(noise=NO_NOISE)


def make_spec(**overrides):
    base = dict(name="w", work_ginstr=100.0, cpi=0.5, working_set_mib=1.0)
    base.update(overrides)
    return WorkloadSpec(**base)


def run_one(machine, spec, tids, options=QUIET):
    return simulate(machine, [Job(spec, tids)], options).job_results[0]


class TestSingleThread:
    def test_compute_bound_time(self, fig3):
        # FIG3 core runs 10 instr/s; 100 G instructions of cpi 0.1 work.
        spec = make_spec(cpi=0.1)
        result = run_one(fig3, spec, (0,))
        assert result.elapsed_s == pytest.approx(10.0)
        assert result.thread_rates == (pytest.approx(10.0),)

    def test_memory_bound_time(self, fig3):
        # Demand 20 B/instr against a 100-unit DRAM link: rate 5.
        spec = make_spec(cpi=0.1, dram_bpi=20.0)
        result = run_one(fig3, spec, (0,))
        assert result.thread_rates == (pytest.approx(5.0),)

    def test_counters_match_work(self, fig3):
        spec = make_spec(cpi=0.1, dram_bpi=20.0)
        result = run_one(fig3, spec, (0,))
        assert result.counters.instructions_g == pytest.approx(100.0)
        assert sum(result.counters.dram_gb_per_node.values()) == pytest.approx(2000.0)


class TestScaling:
    def test_perfect_scaling_without_contention(self, fig3):
        spec = make_spec(cpi=0.1, parallel_fraction=1.0)
        t1 = run_one(fig3, spec, (0,)).elapsed_s
        t2 = run_one(fig3, spec, (0, 2)).elapsed_s  # cores on different sockets
        assert t2 == pytest.approx(t1 / 2, rel=1e-6)

    def test_amdahl_limits_scaling(self, fig3):
        spec = make_spec(cpi=0.1, parallel_fraction=0.5)
        t1 = run_one(fig3, spec, (0,)).elapsed_s
        t2 = run_one(fig3, spec, (0, 2)).elapsed_s
        assert t2 == pytest.approx(t1 * 0.75, rel=1e-6)

    def test_contended_resource_gates_throughput(self, fig3):
        # Two threads on one socket both demanding 80% of local DRAM.
        spec = make_spec(cpi=0.1, dram_bpi=8.0, parallel_fraction=1.0)
        t1 = run_one(fig3, spec, (0,)).elapsed_s
        t2 = run_one(fig3, spec, (0, 1)).elapsed_s
        # DRAM allows 100/8 = 12.5 Ginstr/s total vs 20 demanded.
        assert t2 > t1 * 0.5 * 1.5
        sim = simulate(fig3, [Job(spec, (0, 1))], QUIET)
        assert sim.resource_loads[("dram", 0)] == pytest.approx(100.0, rel=0.01)

    def test_work_growth_slows_scaling(self, fig3):
        """equake's violated assumption: total work grows with n."""
        fixed = make_spec(cpi=0.1, parallel_fraction=1.0)
        growing = make_spec(cpi=0.1, parallel_fraction=1.0, work_growth=0.5)
        t2_fixed = run_one(fig3, fixed, (0, 2)).elapsed_s
        t2_growing = run_one(fig3, growing, (0, 2)).elapsed_s
        assert t2_growing == pytest.approx(t2_fixed * 1.5, rel=1e-6)


class TestLoadBalancing:
    """A fast and a slow thread (SMT-shared vs alone) under both policies."""

    def _times(self, testbox, load_balance):
        spec = make_spec(
            cpi=0.25, parallel_fraction=1.0, load_balance=load_balance,
            work_ginstr=50.0,
        )
        # threads 0,8 share core 0; thread 1 runs alone on core 1
        return run_one(testbox, spec, (0, 8, 1)).elapsed_s

    def test_balanced_beats_lockstep(self, testbox):
        assert self._times(testbox, 1.0) < self._times(testbox, 0.0)

    def test_interpolation_is_monotone(self, testbox):
        times = [self._times(testbox, l) for l in (0.0, 0.5, 1.0)]
        assert times[0] > times[1] > times[2]


class TestIdleThreads:
    def test_idle_threads_add_no_work_but_hold_turbo(self, testbox):
        """Idle threads busy-wait: no demand, but their cores stay awake,
        so the active thread runs at a lower turbo frequency."""
        spec = make_spec(active_threads=1, parallel_fraction=0.0, cpi=0.3)
        t1 = run_one(testbox, spec, (0,)).elapsed_s
        t4 = run_one(testbox, spec, (0, 1, 2, 3)).elapsed_s
        freq_1 = testbox.frequency_ghz(1)
        freq_4 = testbox.frequency_ghz(4)
        assert t4 == pytest.approx(t1 * freq_1 / freq_4, rel=1e-6)
        # Work performed is identical either way.
        r1 = run_one(testbox, spec, (0,))
        r4 = run_one(testbox, spec, (0, 1, 2, 3))
        assert r4.counters.instructions_g == pytest.approx(r1.counters.instructions_g)

    def test_idle_threads_report_zero_rate(self, testbox):
        spec = make_spec(active_threads=1, parallel_fraction=0.0)
        result = run_one(testbox, spec, (0, 1, 2))
        assert result.thread_rates[0] > 0
        assert result.thread_rates[1] == 0.0
        assert result.thread_rates[2] == 0.0

    def test_idle_spread_still_interleaves_memory(self, testbox):
        """Figure 13a: idle threads' init spreads data across sockets."""
        spec = make_spec(active_threads=1, parallel_fraction=0.0, dram_bpi=4.0)
        local = run_one(testbox, spec, (0, 1))
        spread = run_one(testbox, spec, (0, 4))
        assert set(spread.counters.dram_gb_per_node) == {0, 1}
        assert set(local.counters.dram_gb_per_node) == {0}


class TestCommunication:
    def test_cross_socket_peers_slow_threads(self, fig3):
        spec = make_spec(cpi=0.1, parallel_fraction=1.0, comm_fraction=0.05)
        same = run_one(fig3, spec, (0, 1)).elapsed_s
        split = run_one(fig3, spec, (0, 2)).elapsed_s
        assert split == pytest.approx(same * 1.05, rel=1e-3)


class TestBackgroundJobs:
    def test_background_job_reports_window_rates(self, fig3):
        from repro.sim.stressors import cpu_stressor

        sim = simulate(fig3, [Job(cpu_stressor(), (0,))], QUIET)
        jr = sim.job_results[0]
        assert jr.elapsed_s == QUIET.measurement_window_s
        assert jr.counters.instruction_rate == pytest.approx(8.0)  # cpi 0.125 -> 8 of 10

    def test_foreground_property_raises_on_background_only(self, fig3):
        from repro.sim.stressors import cpu_stressor

        sim = simulate(fig3, [Job(cpu_stressor(), (0,))], QUIET)
        with pytest.raises(SimulationError):
            _ = sim.foreground

    def test_stressor_slows_coscheduled_foreground(self, testbox):
        from repro.sim.stressors import cpu_stressor

        spec = make_spec(cpi=0.25)
        alone = run_one(testbox, spec, (0,)).elapsed_s
        sim = simulate(
            testbox,
            [Job(spec, (0,)), Job(cpu_stressor(), (8,))],  # SMT sibling
            QUIET,
        )
        assert sim.foreground.elapsed_s > alone * 1.05


class TestValidation:
    def test_no_jobs_rejected(self, fig3):
        with pytest.raises(SimulationError):
            simulate(fig3, [], QUIET)

    def test_noise_perturbs_elapsed_only_slightly(self, fig3):
        spec = make_spec(cpi=0.1)
        quiet = run_one(fig3, spec, (0,)).elapsed_s
        noisy = run_one(fig3, spec, (0,), SimOptions()).elapsed_s
        assert quiet != noisy
        assert abs(noisy / quiet - 1.0) < 0.02


class TestDeterminism:
    def test_identical_runs_identical_results(self, testbox):
        spec = make_spec(dram_bpi=3.0, parallel_fraction=0.95)
        a = run_one(testbox, spec, (0, 1, 4))
        b = run_one(testbox, spec, (0, 1, 4))
        assert a.elapsed_s == b.elapsed_s
        assert a.thread_rates == b.thread_rates
