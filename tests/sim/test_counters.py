"""Tests for the simulated performance-counter readouts."""

import pytest

from repro.sim.counters import CounterSet


@pytest.fixture
def counters():
    return CounterSet(
        elapsed_s=2.0,
        instructions_g=10.0,
        cache_gb={"L1": 40.0, "L3": 8.0},
        dram_gb_per_node={0: 6.0, 1: 2.0},
        link_gb={(0, 1): 2.0},
    )


class TestRates:
    def test_instruction_rate(self, counters):
        assert counters.instruction_rate == pytest.approx(5.0)

    def test_cache_bandwidth(self, counters):
        assert counters.cache_bandwidth("L1") == pytest.approx(20.0)
        assert counters.cache_bandwidth("L2") == 0.0  # untouched level

    def test_dram_bandwidth_per_node_and_total(self, counters):
        assert counters.dram_bandwidth(0) == pytest.approx(3.0)
        assert counters.dram_bandwidth(1) == pytest.approx(1.0)
        assert counters.dram_bandwidth_total == pytest.approx(4.0)

    def test_link_bandwidth_accepts_either_order(self, counters):
        assert counters.link_bandwidth((0, 1)) == pytest.approx(1.0)
        assert counters.link_bandwidth((1, 0)) == pytest.approx(1.0)

    def test_link_bandwidth_total(self, counters):
        assert counters.link_bandwidth_total == pytest.approx(1.0)


class TestEdgeCases:
    def test_zero_elapsed_gives_zero_rates(self):
        empty = CounterSet()
        assert empty.instruction_rate == 0.0
        assert empty.dram_bandwidth_total == 0.0

    def test_scaled(self, counters):
        double = counters.scaled(2.0)
        assert double.elapsed_s == 4.0
        assert double.instructions_g == 20.0
        assert double.cache_gb["L1"] == 80.0
        assert double.dram_gb_per_node[1] == 4.0
        assert double.link_gb[(0, 1)] == 4.0
        # rates are invariant under uniform scaling
        assert double.instruction_rate == counters.instruction_rate
