"""Tests for the deterministic measurement-noise model."""

import pytest

from repro.sim.noise import NO_NOISE, NoiseModel


class TestDeterminism:
    def test_same_identity_same_factor(self):
        model = NoiseModel(sigma=0.02)
        assert model.factor("X5-2", "MD", (0, 1)) == model.factor("X5-2", "MD", (0, 1))

    def test_different_identities_differ(self):
        model = NoiseModel(sigma=0.02)
        factors = {model.factor("X5-2", "MD", i) for i in range(50)}
        assert len(factors) > 40  # distinct draws, not a constant

    def test_seed_gives_independent_stream(self):
        a = NoiseModel(sigma=0.02, seed=0)
        b = NoiseModel(sigma=0.02, seed=1)
        assert a.factor("run") != b.factor("run")

    def test_reseeded_copy(self):
        model = NoiseModel(sigma=0.02, seed=0)
        other = model.reseeded(7)
        assert other.seed == 7
        assert other.sigma == model.sigma


class TestBounds:
    def test_factor_within_sigma(self):
        model = NoiseModel(sigma=0.03)
        for i in range(200):
            assert 0.97 <= model.factor("id", i) <= 1.03

    def test_factors_fill_the_range(self):
        model = NoiseModel(sigma=0.03)
        factors = [model.factor("id", i) for i in range(500)]
        assert min(factors) < 0.985
        assert max(factors) > 1.015

    def test_roughly_centered(self):
        model = NoiseModel(sigma=0.03)
        factors = [model.factor("id", i) for i in range(500)]
        assert abs(sum(factors) / len(factors) - 1.0) < 0.005


class TestSilent:
    def test_zero_sigma_is_exact(self):
        assert NO_NOISE.factor("anything", 123) == 1.0

    def test_silent_copy(self):
        assert NoiseModel(sigma=0.05).silent().factor("x") == 1.0

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel(sigma=-0.1)
