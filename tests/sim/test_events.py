"""Tests for the event-driven (churn-aware) co-run simulation."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Job, SimOptions, simulate
from repro.sim.events import ScheduledJob, simulate_timeline
from repro.sim.noise import NO_NOISE
from repro.workloads.spec import WorkloadSpec

QUIET = SimOptions(noise=NO_NOISE)


def make_spec(name="ev", work=60.0, dram=5.0, **overrides):
    base = dict(
        name=name, work_ginstr=work, cpi=0.5, l1_bpi=6.0, dram_bpi=dram,
        working_set_mib=4.0, parallel_fraction=0.99,
    )
    base.update(overrides)
    return WorkloadSpec(**base)


class TestSoloEquivalence:
    def test_lone_job_matches_steady_engine(self, testbox):
        spec = make_spec()
        timeline = simulate_timeline(
            testbox, [ScheduledJob(spec, (0, 1))], QUIET
        )
        steady = simulate(testbox, [Job(spec, (0, 1))], QUIET).job_results[0]
        assert timeline.result_for("ev").elapsed_s == pytest.approx(
            steady.elapsed_s, rel=1e-9
        )

    def test_disjoint_concurrent_jobs_match_steady_corun(self, testbox):
        """Two equal jobs arriving together finish together — identical
        to the steady co-run (no churn happens)."""
        a = make_spec("a")
        b = make_spec("b")
        timeline = simulate_timeline(
            testbox,
            [ScheduledJob(a, (0, 1)), ScheduledJob(b, (2, 3))],
            QUIET,
        )
        steady = simulate(
            testbox, [Job(a, (0, 1)), Job(b, (2, 3))], QUIET
        )
        assert timeline.result_for("a").elapsed_s == pytest.approx(
            steady.job_results[0].elapsed_s, rel=1e-6
        )


class TestChurn:
    def test_survivor_speeds_up_after_neighbour_leaves(self, testbox):
        """A long memory-bound job shares DRAM with a short one; after
        the short one finishes, the long one must run faster than the
        steady co-run model predicts."""
        long_job = make_spec("long", work=120.0, dram=8.0)
        short_job = make_spec("short", work=20.0, dram=8.0)
        timeline = simulate_timeline(
            testbox,
            [ScheduledJob(long_job, (0, 1)), ScheduledJob(short_job, (2, 3))],
            QUIET,
        )
        steady = simulate(
            testbox,
            [Job(long_job, (0, 1)), Job(short_job, (2, 3))],
            QUIET,
        )
        churn_time = timeline.result_for("long").elapsed_s
        steady_time = steady.job_results[0].elapsed_s
        solo_time = simulate(testbox, [Job(long_job, (0, 1))], QUIET).job_results[0].elapsed_s
        assert churn_time < steady_time
        assert churn_time > solo_time * 0.999

    def test_segments_recorded_per_environment(self, testbox):
        long_job = make_spec("long", work=120.0, dram=8.0)
        short_job = make_spec("short", work=20.0, dram=8.0)
        timeline = simulate_timeline(
            testbox,
            [ScheduledJob(long_job, (0, 1)), ScheduledJob(short_job, (2, 3))],
            QUIET,
        )
        segments = timeline.result_for("long").segments
        assert len(segments) == 2  # contended, then alone
        contended, alone = segments
        assert contended[2] > alone[2]  # hypothetical time drops

    def test_late_arrival_slows_the_incumbent(self, testbox):
        incumbent = make_spec("incumbent", work=120.0, dram=8.0)
        late = make_spec("late", work=120.0, dram=8.0)
        alone = simulate_timeline(
            testbox, [ScheduledJob(incumbent, (0, 1))], QUIET
        ).result_for("incumbent").elapsed_s
        contended = simulate_timeline(
            testbox,
            [
                ScheduledJob(incumbent, (0, 1)),
                ScheduledJob(late, (2, 3), arrival_s=alone / 2),
            ],
            QUIET,
        ).result_for("incumbent").elapsed_s
        assert contended > alone

    def test_sequential_reuse_of_same_contexts_is_legal(self, testbox):
        first = make_spec("first", work=20.0)
        t_first = simulate_timeline(
            testbox, [ScheduledJob(first, (0, 1))], QUIET
        ).makespan_s
        second = make_spec("second", work=20.0)
        timeline = simulate_timeline(
            testbox,
            [
                ScheduledJob(first, (0, 1)),
                ScheduledJob(second, (0, 1), arrival_s=t_first + 1.0),
            ],
            QUIET,
        )
        assert timeline.result_for("second").end_s > t_first

    def test_temporal_overlap_on_shared_contexts_rejected(self, testbox):
        a = make_spec("a", work=100.0)
        b = make_spec("b", work=100.0)
        with pytest.raises(SimulationError, match="overlap"):
            simulate_timeline(
                testbox,
                [ScheduledJob(a, (0, 1)), ScheduledJob(b, (1, 2))],
                QUIET,
            )


class TestValidation:
    def test_empty_rejected(self, testbox):
        with pytest.raises(SimulationError):
            simulate_timeline(testbox, [], QUIET)

    def test_duplicate_names_rejected(self, testbox):
        with pytest.raises(SimulationError, match="duplicate"):
            simulate_timeline(
                testbox,
                [ScheduledJob(make_spec("x"), (0,)), ScheduledJob(make_spec("x"), (1,))],
                QUIET,
            )

    def test_background_specs_rejected(self, testbox):
        from repro.sim.stressors import cpu_stressor

        with pytest.raises(SimulationError, match="foreground"):
            ScheduledJob(cpu_stressor(), (0,))

    def test_makespan(self, testbox):
        timeline = simulate_timeline(
            testbox,
            [
                ScheduledJob(make_spec("a", work=20.0), (0, 1)),
                ScheduledJob(make_spec("b", work=40.0), (2, 3)),
            ],
            QUIET,
        )
        assert timeline.makespan_s == timeline.result_for("b").end_s
