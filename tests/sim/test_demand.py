"""Tests for the simulator's demand model."""

import pytest

from repro.errors import PlacementError
from repro.hardware import machines
from repro.sim.demand import (
    DemandModel,
    JobSpecOnMachine,
    llc_spill_fraction,
    memory_shares,
    shared_core_efficiency,
)
from repro.workloads.spec import MemoryPolicy, WorkloadSpec


def make_spec(**overrides):
    base = dict(name="w", work_ginstr=10.0, cpi=0.5, dram_bpi=2.0, working_set_mib=1.0)
    base.update(overrides)
    return WorkloadSpec(**base)


class TestSpillCurve:
    def test_no_spill_when_fitting(self):
        assert llc_spill_fraction(10.0, 20.0, adaptive=True) == 0.0
        assert llc_spill_fraction(20.0, 20.0, adaptive=True) == 0.0

    def test_adaptive_spill_is_gradual(self):
        just_over = llc_spill_fraction(22.0, 20.0, adaptive=True)
        double = llc_spill_fraction(40.0, 20.0, adaptive=True)
        assert 0 < just_over < 0.15
        assert just_over < double < 1.0
        assert double == pytest.approx(0.5)  # half the working set misses

    def test_non_adaptive_is_a_cliff(self):
        adaptive = llc_spill_fraction(28.0, 20.0, adaptive=True)
        cliff = llc_spill_fraction(28.0, 20.0, adaptive=False)
        assert cliff > 2 * adaptive

    def test_spill_bounded_by_one(self):
        assert llc_spill_fraction(1e9, 1.0, adaptive=True) <= 1.0
        assert llc_spill_fraction(1e9, 1.0, adaptive=False) == 1.0

    def test_monotone_in_working_set(self):
        values = [llc_spill_fraction(ws, 20.0, adaptive=True) for ws in (10, 25, 40, 80)]
        assert values == sorted(values)


class TestSharedCoreEfficiency:
    def test_single_thread_no_penalty(self):
        assert shared_core_efficiency([0.5]) == 1.0

    def test_steady_threads_no_penalty(self):
        assert shared_core_efficiency([1.0, 1.0]) == pytest.approx(1.0)

    def test_bursty_threads_interfere(self):
        assert shared_core_efficiency([0.5, 0.5]) < 1.0

    def test_more_bursty_is_worse(self):
        assert shared_core_efficiency([0.3, 0.3]) < shared_core_efficiency([0.8, 0.8])


class TestMemoryShares:
    def test_interleave_over_active_sockets(self, testbox):
        topo = testbox.topology
        spec = make_spec()
        # threads on both sockets -> half the traffic to each node
        shares = memory_shares(spec, topo, [0, 4], thread_socket=0)
        assert shares == {0: 0.5, 1: 0.5}

    def test_interleave_single_socket(self, testbox):
        spec = make_spec()
        shares = memory_shares(spec, testbox.topology, [0, 1], thread_socket=0)
        assert shares == {0: 1.0}

    def test_bind_policy(self, testbox):
        spec = make_spec(memory_policy=MemoryPolicy.bind(1))
        shares = memory_shares(spec, testbox.topology, [0], thread_socket=0)
        assert shares == {1: 1.0}

    def test_local_policy(self, testbox):
        spec = make_spec(memory_policy=MemoryPolicy.local())
        shares = memory_shares(spec, testbox.topology, [0, 4], thread_socket=1)
        assert shares == {1: 1.0}


class TestDemandModelValidation:
    def test_rejects_double_booked_context(self, testbox):
        jobs = [
            JobSpecOnMachine(make_spec(), (0, 1)),
            JobSpecOnMachine(make_spec(name="x"), (1, 2)),
        ]
        with pytest.raises(PlacementError, match="claimed by both"):
            DemandModel(testbox, jobs)

    def test_rejects_unknown_context(self, testbox):
        with pytest.raises(PlacementError):
            DemandModel(testbox, [JobSpecOnMachine(make_spec(), (999,))])

    def test_rejects_empty_placement(self, testbox):
        with pytest.raises(PlacementError):
            DemandModel(testbox, [JobSpecOnMachine(make_spec(), ())])


class TestDemandModelStructure:
    def test_one_row_per_active_thread(self, testbox):
        spec = make_spec(active_threads=1)
        model = DemandModel(testbox, [JobSpecOnMachine(spec, (0, 1, 2))])
        assert model.n_threads == 1  # idle threads impose no demand

    def test_remote_traffic_loads_the_link(self, testbox):
        spec = make_spec()
        model = DemandModel(testbox, [JobSpecOnMachine(spec, (0, 4))])
        keys = set(model.resource_keys())
        assert ("link", (0, 1)) in keys
        assert ("dram", 0) in keys and ("dram", 1) in keys

    def test_single_socket_job_has_no_link_demand(self, testbox):
        spec = make_spec()
        model = DemandModel(testbox, [JobSpecOnMachine(spec, (0, 1))])
        assert not any(k[0] == "link" for k in model.resource_keys())

    def test_smt_sharing_reduces_limits(self, testbox):
        spec = make_spec()
        solo = DemandModel(testbox, [JobSpecOnMachine(spec, (0,))])
        shared = DemandModel(testbox, [JobSpecOnMachine(spec, (0, 8))])  # same core
        assert shared.limits[0] < solo.limits[0]

    def test_turbo_raises_limits_at_low_occupancy(self, testbox):
        spec = make_spec(cpi=0.2)  # core-bound so limits track frequency
        one = DemandModel(testbox, [JobSpecOnMachine(spec, (0,))])
        full_tids = tuple(c.hw_thread_ids[0] for c in testbox.topology.cores)
        full = DemandModel(testbox, [JobSpecOnMachine(spec, full_tids)])
        assert one.limits[0] > full.limits[0]

    def test_comm_stretch_counts_remote_peers(self, testbox):
        spec = make_spec(comm_fraction=0.01)
        model = DemandModel(testbox, [JobSpecOnMachine(spec, (0, 1, 4))])
        by_tid = {t.hw_thread_id: t for t in model.threads}
        assert by_tid[0].comm_stretch == pytest.approx(1.01)  # one remote peer
        assert by_tid[4].comm_stretch == pytest.approx(1.02)  # two remote peers

    def test_capacities_positive(self, testbox):
        model = DemandModel(testbox, [JobSpecOnMachine(make_spec(), (0, 1, 4))])
        assert (model.capacities > 0).all()
