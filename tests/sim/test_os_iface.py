"""Tests for the simulated OS interface (topology + pinning helpers)."""

import pytest

from repro.errors import PlacementError
from repro.sim.os_iface import SimulatedOS


@pytest.fixture
def osi(testbox):
    return SimulatedOS(testbox)


class TestTopology:
    def test_exposes_structure_only(self, osi, testbox):
        assert osi.topology is testbox.topology


class TestOneThreadPerCore:
    def test_stays_on_first_socket(self, osi):
        tids = osi.one_thread_per_core(4, sockets=[0])
        cores = {osi.topology.hw_thread(t).core_id for t in tids}
        sockets = {osi.topology.hw_thread(t).socket_id for t in tids}
        assert len(cores) == 4
        assert sockets == {0}

    def test_spans_sockets_in_order(self, osi):
        tids = osi.one_thread_per_core(6)
        sockets = [osi.topology.hw_thread(t).socket_id for t in tids]
        assert sockets == [0, 0, 0, 0, 1, 1]

    def test_rejects_overflow(self, osi):
        with pytest.raises(PlacementError):
            osi.one_thread_per_core(5, sockets=[0])


class TestPackedSmt:
    def test_fills_cores_completely(self, osi):
        tids = osi.packed_smt(4, sockets=[0])
        counts = osi.topology.threads_per_core_map(tids)
        assert counts == {0: 2, 1: 2}

    def test_rejects_overflow(self, osi):
        with pytest.raises(PlacementError):
            osi.packed_smt(9, sockets=[0])


class TestSplitAcrossSockets:
    def test_even_split(self, osi):
        tids = osi.split_across_sockets(4)
        sockets = [osi.topology.hw_thread(t).socket_id for t in tids]
        assert sockets.count(0) == 2 and sockets.count(1) == 2

    def test_rejects_odd_count(self, osi):
        with pytest.raises(PlacementError):
            osi.split_across_sockets(3)

    def test_rejects_single_socket_machine(self, fig3):
        from repro.hardware.spec import MachineSpec
        from repro.hardware.topology import MachineTopology

        single = fig3.with_topology(MachineTopology(1, 2, 2), "single")
        with pytest.raises(PlacementError):
            SimulatedOS(single).split_across_sockets(2)


class TestSmtSiblings:
    def test_siblings_share_cores(self, osi):
        tids = osi.one_thread_per_core(3, sockets=[0])
        siblings = osi.smt_siblings(tids)
        for t, s in zip(tids, siblings):
            assert osi.topology.hw_thread(t).core_id == osi.topology.hw_thread(s).core_id
            assert t != s

    def test_no_free_sibling_raises(self, osi):
        packed = osi.packed_smt(2, sockets=[0])  # both contexts of core 0
        with pytest.raises(PlacementError):
            osi.smt_siblings(packed)


class TestIdleCoreContexts:
    def test_fillers_avoid_busy_cores(self, osi):
        busy = osi.one_thread_per_core(3, sockets=[0])
        idle = osi.idle_core_contexts(busy)
        busy_cores = {osi.topology.hw_thread(t).core_id for t in busy}
        idle_cores = {osi.topology.hw_thread(t).core_id for t in idle}
        assert not busy_cores & idle_cores
        assert len(idle_cores) == osi.topology.n_cores - 3

    def test_full_machine_has_no_idle_cores(self, osi):
        busy = [c.hw_thread_ids[0] for c in osi.topology.cores]
        assert osi.idle_core_contexts(busy) == ()
