"""Tests for the timed-run facade (the simulated perf wrapper)."""

import pytest

from repro.sim.engine import Job
from repro.sim.noise import NO_NOISE
from repro.sim.run import measure_stressors, run_workload
from repro.sim.stressors import cpu_stressor, dram_stressor
from repro.workloads.spec import WorkloadSpec


def make_spec(**overrides):
    base = dict(name="w", work_ginstr=50.0, cpi=0.5, working_set_mib=1.0)
    base.update(overrides)
    return WorkloadSpec(**base)


class TestRunWorkload:
    def test_reports_timing_and_counters(self, testbox):
        run = run_workload(testbox, make_spec(), (0,), noise=NO_NOISE)
        assert run.elapsed_s > 0
        assert run.counters.instructions_g == pytest.approx(50.0)
        assert run.n_threads == 1
        assert run.machine_name == "TESTBOX"

    def test_fill_idle_cores_pins_frequency(self, testbox):
        """With fillers, a 1-thread run sees all-core turbo, not max turbo."""
        free = run_workload(testbox, make_spec(cpi=0.2), (0,), noise=NO_NOISE)
        filled = run_workload(
            testbox, make_spec(cpi=0.2), (0,), fill_idle_cores=True, noise=NO_NOISE
        )
        assert filled.elapsed_s > free.elapsed_s
        ratio = filled.elapsed_s / free.elapsed_s
        expected = testbox.turbo.max_turbo_ghz / testbox.turbo.all_core_turbo_ghz
        assert ratio == pytest.approx(expected, rel=0.01)

    def test_stressor_jobs_co_run(self, testbox):
        plain = run_workload(testbox, make_spec(cpi=0.25), (0,), noise=NO_NOISE)
        stressed = run_workload(
            testbox,
            make_spec(cpi=0.25),
            (0,),
            stressor_jobs=[Job(cpu_stressor(), (8,))],
            noise=NO_NOISE,
        )
        assert stressed.elapsed_s > plain.elapsed_s

    def test_turbo_disable_slows_runs(self, testbox):
        """Figure 14: disabling turbo runs at nominal, below all-core turbo."""
        on = run_workload(testbox, make_spec(cpi=0.2), (0,), fill_idle_cores=True,
                          noise=NO_NOISE)
        off = run_workload(testbox, make_spec(cpi=0.2), (0,), fill_idle_cores=True,
                           turbo_enabled=False, noise=NO_NOISE)
        assert off.elapsed_s > on.elapsed_s

    def test_distinct_run_tags_draw_distinct_noise(self, testbox):
        a = run_workload(testbox, make_spec(), (0,), run_tag="a")
        b = run_workload(testbox, make_spec(), (0,), run_tag="b")
        assert a.elapsed_s != b.elapsed_s


class TestMeasureStressors:
    def test_window_counters(self, testbox):
        sim = measure_stressors(
            testbox,
            [Job(cpu_stressor(), (0,))],
            noise=NO_NOISE,
            window_s=2.0,
        )
        jr = sim.job_results[0]
        assert jr.elapsed_s == 2.0
        assert jr.counters.instruction_rate > 0

    def test_fill_idle_cores_default_on(self, testbox):
        """Measurement runs at all-core turbo by default."""
        sim = measure_stressors(testbox, [Job(cpu_stressor(), (0,))], noise=NO_NOISE)
        rate = sim.job_results[0].counters.instruction_rate
        expected = testbox.ipc_single * testbox.turbo.all_core_turbo_ghz
        assert rate == pytest.approx(expected, rel=0.01)

    def test_dram_stressor_counters_report_node_traffic(self, testbox):
        tids = tuple(c.hw_thread_ids[0] for c in testbox.topology.cores_of_socket(0))
        sim = measure_stressors(
            testbox, [Job(dram_stressor(nodes=(0,)), tids)], noise=NO_NOISE
        )
        counters = sim.job_results[0].counters
        assert counters.dram_bandwidth(0) == pytest.approx(
            testbox.dram_gbs_per_node, rel=0.02
        )
        assert counters.dram_bandwidth(1) == 0.0
