"""Tests for the structured paper-claims data and comparison logic."""

import pytest

from repro.errors import ReproError
from repro.paper import CLAIMS, PaperClaim, claims_for, compare_headlines, comparison_table


class TestClaimsData:
    def test_unique_keys_per_experiment(self):
        seen = set()
        for claim in CLAIMS:
            key = (claim.experiment_id, claim.headline_key)
            assert key not in seen, key
            seen.add(key)

    def test_every_claim_names_a_registered_experiment(self):
        from repro.experiments.run_all import REGISTRY

        for claim in CLAIMS:
            assert claim.experiment_id in REGISTRY, claim.headline_key

    def test_turbo_claims_are_exact_frequency_ratios(self):
        boost = next(c for c in CLAIMS if c.headline_key.startswith("single_thread"))
        assert boost.paper_value == pytest.approx(3.6 / 2.8)
        assert boost.expectation == "band"

    def test_claims_for(self):
        assert {c.experiment_id for c in claims_for("sweep")} == {"sweep"}
        assert len(claims_for("sweep")) == 3


class TestVerdicts:
    def test_band_verdicts(self):
        claim = PaperClaim("k", "fig14", 1.286, "6.3", "d", expectation="band", band=0.05)
        assert claim.verdict(1.29) == "match"
        assert claim.verdict(1.5) == "deviates"

    def test_order_verdicts(self):
        claim = PaperClaim("k", "headline", 2.8, "6.1", "d")
        assert claim.verdict(1.5) == "comparable"
        assert claim.verdict(30.0) == "deviates"

    def test_shape_verdicts(self):
        claim = PaperClaim("k", "fig13", 10.0, "6.3", "d", expectation="shape")
        assert claim.verdict(7.2) == "match"
        assert claim.verdict(-3.0) == "deviates"


class TestComparison:
    def test_joins_measured_values(self):
        headlines = {
            "fig14": {
                "single_thread_boost_over_background": 1.308,
                "full_machine_penalty_for_disabling": 1.226,
            }
        }
        results = compare_headlines(headlines)
        by_key = {c.headline_key: (m, v) for c, m, v in results}
        measured, verdict = by_key["single_thread_boost_over_background"]
        assert measured == 1.308
        assert verdict == "match"
        # Everything not in the run is marked, not dropped.
        assert by_key["cost_ratio_X5-2"] == (None, "not run")

    def test_table_renders(self):
        headlines = {"fig14": {"single_thread_boost_over_background": 1.308}}
        table = comparison_table(headlines)
        assert "paper" in table and "verdict" in table
        assert "match" in table

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            compare_headlines({})


class TestTranscriptParsing:
    TRANSCRIPT = """\
== fig14: Effect of Turbo Boost on a CPU-bound loop (X5-2) ==
paper: something

plot lines here | with pipes

headline numbers:
  single_thread_boost_over_background = 1.308
  full_machine_penalty_for_disabling = 1.226
[fig14 took 0.9s]

== sweep: Simple pattern exploration vs Pandia (Section 6.3) ==
headline numbers:
  cost_ratio_X5-2 = 7.659
"""

    def test_parse_results_headlines(self):
        from repro.paper import parse_results_headlines

        headlines = parse_results_headlines(self.TRANSCRIPT)
        assert headlines["fig14"]["single_thread_boost_over_background"] == 1.308
        assert headlines["sweep"]["cost_ratio_X5-2"] == 7.659

    def test_parse_feeds_comparison(self):
        from repro.paper import comparison_table, parse_results_headlines

        table = comparison_table(parse_results_headlines(self.TRANSCRIPT))
        assert "match" in table
        assert "not run" in table

    def test_parse_rejects_headline_free_text(self):
        from repro.paper import parse_results_headlines

        with pytest.raises(ReproError):
            parse_results_headlines("nothing to see")

    def test_cli_main(self, tmp_path, capsys):
        from repro.paper import main

        path = tmp_path / "results.txt"
        path.write_text(self.TRANSCRIPT)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "paper vs reproduction" in out
