"""Tests for the shared NUMA traffic-distribution arithmetic."""

import pytest

from repro.errors import ReproError
from repro.numa import dram_shares, local_fraction_from_remote, remote_fraction


class TestDramShares:
    def test_fully_interleaved(self):
        shares = dram_shares(0.0, own_socket=0, active_sockets=[0, 1])
        assert shares == {0: 0.5, 1: 0.5}

    def test_fully_local(self):
        shares = dram_shares(1.0, own_socket=1, active_sockets=[0, 1])
        assert shares[1] == pytest.approx(1.0)
        assert shares[0] == pytest.approx(0.0)

    def test_mixed(self):
        shares = dram_shares(0.6, own_socket=0, active_sockets=[0, 1])
        assert shares[0] == pytest.approx(0.8)  # 0.6 + 0.4/2
        assert shares[1] == pytest.approx(0.2)

    def test_four_sockets(self):
        shares = dram_shares(0.5, own_socket=2, active_sockets=[0, 1, 2, 3])
        assert shares[2] == pytest.approx(0.5 + 0.125)
        for node in (0, 1, 3):
            assert shares[node] == pytest.approx(0.125)

    def test_shares_sum_to_one(self):
        for lam in (0.0, 0.3, 0.7, 1.0):
            shares = dram_shares(lam, 0, [0, 1, 2])
            assert sum(shares.values()) == pytest.approx(1.0)

    def test_single_socket_is_all_local(self):
        assert dram_shares(0.3, 0, [0]) == {0: pytest.approx(1.0)}

    def test_validation(self):
        with pytest.raises(ReproError):
            dram_shares(1.5, 0, [0, 1])
        with pytest.raises(ReproError):
            dram_shares(0.5, 3, [0, 1])  # own socket not active


class TestRemoteFraction:
    def test_round_trip(self):
        for lam in (0.0, 0.25, 0.8, 1.0):
            for sockets in (2, 3, 4):
                rho = remote_fraction(lam, sockets)
                assert local_fraction_from_remote(rho, sockets) == pytest.approx(lam)

    def test_two_socket_split(self):
        assert remote_fraction(0.0, 2) == pytest.approx(0.5)
        assert remote_fraction(1.0, 2) == pytest.approx(0.0)

    def test_consistent_with_shares(self):
        lam, sockets = 0.4, [0, 1, 2]
        shares = dram_shares(lam, 0, sockets)
        remote = sum(v for node, v in shares.items() if node != 0)
        assert remote == pytest.approx(remote_fraction(lam, 3))

    def test_inversion_clamped(self):
        # Noise can push the measured remote fraction past the ideal.
        assert local_fraction_from_remote(0.7, 2) == 0.0
        assert local_fraction_from_remote(-0.05, 2) == 1.0

    def test_single_socket_unobservable(self):
        with pytest.raises(ReproError):
            local_fraction_from_remote(0.1, 1)
