"""Rack scheduling across *different* machine models.

The rack abstraction does not assume identical nodes; these tests pin
the behaviour on a mixed rack (a big X5-2 next to a small TESTBOX-class
node): wide parallel workloads go to the big machine, and the
schedule's predictions still track joint co-run simulations per node.
"""

import pytest

from repro.core.description import DemandVector, WorkloadDescription
from repro.core.machine_desc import generate_machine_description
from repro.hardware import machines
from repro.rack import Rack, RackMachine, RackScheduler, validate_schedule
from repro.sim.noise import NO_NOISE, NoiseModel
from repro.workloads.spec import WorkloadSpec


@pytest.fixture(scope="module")
def mixed_rack():
    big = machines.get("X3-2")  # 32 hardware threads
    small = machines.get("TESTBOX")  # 16 hardware threads
    return Rack(
        machines=(
            RackMachine("big", big, generate_machine_description(big, noise=NO_NOISE)),
            RackMachine(
                "small", small, generate_machine_description(small, noise=NO_NOISE)
            ),
        )
    )


def make_description(name, machine_name, inst=4.0, dram=2.0, p=0.98, t1=20.0):
    return WorkloadDescription(
        name=name,
        machine_name=machine_name,
        t1=t1,
        demands=DemandVector(inst_rate=inst, cache_bw={"L1": 20.0}, dram_bw=dram),
        parallel_fraction=p,
        load_balance=0.8,
    )


class TestMixedRack:
    def test_rack_accepts_different_shapes(self, mixed_rack):
        assert mixed_rack.total_hw_threads == 48

    def test_wide_workload_lands_on_the_big_machine(self, mixed_rack):
        """A highly parallel workload alone on the rack should take the
        machine with more contexts."""
        scheduler = RackScheduler(mixed_rack)
        wide = make_description("wide", "X3-2", p=0.999)
        schedule = scheduler.schedule([wide])
        assert schedule.assignment_for("wide").machine_name == "big"

    def test_batch_fills_both_machines(self, mixed_rack):
        scheduler = RackScheduler(mixed_rack)
        batch = [make_description(f"w{i}", "X3-2") for i in range(4)]
        schedule = scheduler.schedule(batch)
        used = {a.machine_name for a in schedule.assignments}
        assert used == {"big", "small"}

    def test_placements_respect_each_machines_topology(self, mixed_rack):
        scheduler = RackScheduler(mixed_rack)
        batch = [make_description(f"w{i}", "X3-2") for i in range(3)]
        schedule = scheduler.schedule(batch)
        for a in schedule.assignments:
            machine = mixed_rack.machine(a.machine_name)
            assert a.placement.topology.shape() == machine.spec.topology.shape()
            assert max(a.placement.hw_thread_ids) < machine.n_hw_threads

    def test_validation_runs_per_machine_spec(self, mixed_rack):
        """End to end on the mixed rack with real profiled specs."""
        specs = {
            "het-a": WorkloadSpec(
                name="het-a", work_ginstr=60.0, cpi=0.5, l1_bpi=6.0,
                dram_bpi=1.5, working_set_mib=8.0, parallel_fraction=0.98,
            ),
            "het-b": WorkloadSpec(
                name="het-b", work_ginstr=80.0, cpi=0.4, l1_bpi=4.0,
                working_set_mib=1.0, parallel_fraction=0.99,
            ),
        }
        from repro.core.workload_desc import WorkloadDescriptionGenerator

        descriptions = []
        for spec in specs.values():
            big = mixed_rack.machine("big")
            generator = WorkloadDescriptionGenerator(
                big.spec, big.description, noise=NO_NOISE
            )
            descriptions.append(generator.generate(spec))
        schedule = RackScheduler(mixed_rack).schedule(descriptions)
        validation = validate_schedule(schedule, specs, noise=NoiseModel(sigma=0.01))
        assert validation.makespan_error_percent < 50.0
