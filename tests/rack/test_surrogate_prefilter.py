"""Surrogate pre-filter on the rack scheduler's solo estimates.

The surrogate only picks which machine's solo reference placement pays
the exact fixed point; the estimate returned must equal the unfiltered
(every-machine) one, and a low-confidence model must widen back to
verifying the whole fleet.
"""

import pytest

from repro.core.machine_desc import generate_machine_description
from repro.core.workload_desc import WorkloadDescriptionGenerator
from repro.hardware import machines
from repro.rack import Rack, RackMachine, RackScheduler
from repro.sim.noise import NO_NOISE
from repro.surrogate import train_surrogate
from repro.workloads import catalog

TRAIN = ("X3-2", "X4-2")


@pytest.fixture(scope="module")
def setups():
    """{catalog name: (spec, md, {workload: description})}.

    The scheduler scores ONE profiled description against every fleet
    machine, so the fleet surrogate trains each machine against that
    same description (the deployment distribution) — not a per-machine
    re-profile.
    """
    out = {}
    shared = None
    for name in TRAIN:
        spec = machines.get(name)
        md = generate_machine_description(spec, noise=NO_NOISE)
        if shared is None:
            gen = WorkloadDescriptionGenerator(spec, md, noise=NO_NOISE)
            shared = gen.generate(catalog.get("MD"))
        out[name] = (spec, md, {"MD": shared})
    return out


@pytest.fixture(scope="module")
def rack(setups):
    return Rack(
        machines=tuple(
            RackMachine(f"node-{name}", spec, md)
            for name, (spec, md, _) in setups.items()
        )
    )


@pytest.fixture(scope="module")
def model(setups):
    descriptions = {name: (md, wds) for name, (_, md, wds) in setups.items()}
    return train_surrogate(
        TRAIN, ("MD",), kind="ridge", sample=150, seed=0,
        descriptions=descriptions,
    )


def _surrogate_counters(scheduler):
    totals = {"surrogate_scored": 0, "surrogate_verified": 0,
              "surrogate_fallbacks": 0}
    for engine in scheduler._solo_search.values():
        stats = engine.stats
        for key in totals:
            totals[key] += getattr(stats, key)
    return totals


class TestSoloPrefilter:
    def test_prefiltered_estimate_is_exact(self, rack, setups, model):
        workload = setups["X3-2"][2]["MD"]
        reference = RackScheduler(rack).solo_estimate(workload)
        filtered = RackScheduler(rack, surrogate=model)
        assert filtered.solo_estimate(workload) == reference

    def test_only_the_leader_pays_the_fixed_point(self, rack, setups, model):
        scheduler = RackScheduler(rack, surrogate=model)
        scheduler.solo_estimate(setups["X3-2"][2]["MD"])
        counters = _surrogate_counters(scheduler)
        assert counters["surrogate_scored"] == len(rack.machines)
        assert counters["surrogate_verified"] == 1
        assert counters["surrogate_fallbacks"] == 0

    def test_low_confidence_widens_to_the_whole_fleet(self, rack, setups):
        """A model trained on the FIG3 toy machine cannot score these
        machines confidently: every candidate must be exact-verified."""
        fig3 = machines.get("FIG3")
        md = generate_machine_description(fig3, noise=NO_NOISE)
        gen = WorkloadDescriptionGenerator(fig3, md, noise=NO_NOISE)
        toy_model = train_surrogate(
            ("FIG3",), ("MD",), kind="ridge", sample=20, seed=0,
            descriptions={"FIG3": (md, {"MD": gen.generate(catalog.get("MD"))})},
        )
        workload = setups["X3-2"][2]["MD"]
        reference = RackScheduler(rack).solo_estimate(workload)
        scheduler = RackScheduler(rack, surrogate=toy_model)
        assert scheduler.solo_estimate(workload) == reference
        counters = _surrogate_counters(scheduler)
        assert counters["surrogate_fallbacks"] >= 1
        assert counters["surrogate_verified"] == 0

    def test_path_is_loaded_lazily(self, rack, setups, model, tmp_path):
        from repro.io import save_surrogate

        path = tmp_path / "m.json"
        save_surrogate(model, path)
        scheduler = RackScheduler(rack, surrogate=path)
        workload = setups["X3-2"][2]["MD"]
        assert scheduler.solo_estimate(workload) == RackScheduler(
            rack
        ).solo_estimate(workload)
