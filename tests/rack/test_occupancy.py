"""Tests for the shared fleet occupancy/residency model."""

import math

import pytest

from repro.core.description import DemandVector, WorkloadDescription
from repro.errors import PlacementError, ReproError
from repro.rack.model import Rack, RackMachine
from repro.rack.occupancy import FleetOccupancy
from repro.rack.scheduler import free_context_placement


@pytest.fixture(scope="module")
def rack(request):
    testbox = request.getfixturevalue("testbox")
    testbox_md = request.getfixturevalue("testbox_md")
    return Rack(
        machines=(
            RackMachine("node-0", testbox, testbox_md),
            RackMachine("node-1", testbox, testbox_md),
        )
    )


def desc(name):
    return WorkloadDescription(
        name=name,
        machine_name="TESTBOX",
        t1=20.0,
        demands=DemandVector(inst_rate=4.0, cache_bw={"L1": 20.0}, dram_bw=2.0),
        parallel_fraction=0.98,
        load_balance=0.8,
    )


def placement_on(rack, machine_name, occupied, n):
    return free_context_placement(rack.machine(machine_name), occupied, n)


class TestPlaceRemove:
    def test_place_tracks_contexts(self, rack):
        fleet = FleetOccupancy(rack)
        placement = placement_on(rack, "node-0", set(), 4)
        fleet.place(desc("w"), "node-0", placement)
        assert fleet.occupied("node-0") == set(placement.hw_thread_ids)
        assert fleet.free_contexts("node-0") == 12
        assert fleet.total_free_contexts() == 28
        assert fleet.occupied_total() == 4
        assert fleet.utilisation() == pytest.approx(4 / 32)
        assert "w" in fleet and len(fleet) == 1

    def test_remove_frees_contexts(self, rack):
        fleet = FleetOccupancy(rack)
        fleet.place(desc("w"), "node-0", placement_on(rack, "node-0", set(), 4))
        resident = fleet.remove("w")
        assert resident.name == "w"
        assert fleet.occupied("node-0") == set()
        assert "w" not in fleet
        with pytest.raises(ReproError, match="not resident"):
            fleet.remove("w")

    def test_duplicate_name_rejected(self, rack):
        fleet = FleetOccupancy(rack)
        fleet.place(desc("w"), "node-0", placement_on(rack, "node-0", set(), 2))
        with pytest.raises(ReproError, match="already resident"):
            fleet.place(
                desc("w"), "node-1", placement_on(rack, "node-1", set(), 2)
            )

    def test_overlap_names_machine_and_threads(self, rack):
        fleet = FleetOccupancy(rack)
        placement = placement_on(rack, "node-0", set(), 2)
        fleet.place(desc("a"), "node-0", placement)
        with pytest.raises(PlacementError, match="node-0"):
            fleet.place(desc("b"), "node-0", placement)

    def test_restore_preserves_timing_fields(self, rack):
        fleet = FleetOccupancy(rack)
        placement = placement_on(rack, "node-0", set(), 2)
        fleet.place(
            desc("w"), "node-0", placement,
            start_s=1.0, end_s=11.0, predicted_total_s=10.0,
        )
        removed = fleet.remove("w")
        removed.advance_to(6.0)
        fleet.restore(removed)
        resident = fleet.resident("w")
        assert resident.start_s == 1.0
        assert resident.done_fraction == pytest.approx(0.5)
        assert fleet.occupied("node-0") == set(placement.hw_thread_ids)


class TestQueries:
    def test_insertion_order_is_stable(self, rack):
        fleet = FleetOccupancy(rack)
        taken = set()
        for i, name in enumerate(["c", "a", "b"]):
            placement = placement_on(rack, "node-0", taken, 2)
            fleet.place(desc(name), "node-0", placement)
            taken |= set(placement.hw_thread_ids)
        assert [r.name for r in fleet.residents()] == ["c", "a", "b"]
        assert [r.name for r in fleet.residents_on("node-0")] == ["c", "a", "b"]
        assert [c.description.name for c in fleet.co_scheduled("node-0")] == [
            "c", "a", "b",
        ]

    def test_unknown_machine_rejected(self, rack):
        fleet = FleetOccupancy(rack)
        with pytest.raises(ReproError, match="no rack machine"):
            fleet.residents_on("node-9")


class TestResidentTiming:
    def test_progress_accrues_under_prediction(self, rack):
        fleet = FleetOccupancy(rack)
        resident = fleet.place(
            desc("w"), "node-0", placement_on(rack, "node-0", set(), 2),
            start_s=0.0, end_s=10.0, predicted_total_s=10.0,
        )
        assert resident.progress_at(5.0) == pytest.approx(0.5)
        resident.advance_to(5.0)
        assert resident.done_fraction == pytest.approx(0.5)

    def test_retime_preserves_progress_fraction(self, rack):
        fleet = FleetOccupancy(rack)
        resident = fleet.place(
            desc("w"), "node-0", placement_on(rack, "node-0", set(), 2),
            start_s=0.0, end_s=10.0, predicted_total_s=10.0,
        )
        # Half done at t=5; the new prediction says 4s total, so the
        # remaining half takes 2s more.
        resident.retime(5.0, 4.0)
        assert resident.end_s == pytest.approx(7.0)

    def test_time_cannot_go_backwards(self, rack):
        fleet = FleetOccupancy(rack)
        resident = fleet.place(
            desc("w"), "node-0", placement_on(rack, "node-0", set(), 2),
            start_s=5.0, end_s=15.0, predicted_total_s=10.0,
        )
        with pytest.raises(ReproError, match="backwards"):
            resident.advance_to(1.0)
        with pytest.raises(ReproError, match="positive"):
            resident.retime(6.0, 0.0)

    def test_batch_defaults_are_inert(self, rack):
        fleet = FleetOccupancy(rack)
        resident = fleet.place(
            desc("w"), "node-0", placement_on(rack, "node-0", set(), 2)
        )
        assert resident.end_s == math.inf
        resident.advance_to(100.0)  # infinite prediction: no progress
        assert resident.done_fraction == 0.0
