"""Tests for the rack-scale scheduler (paper Section 8 future work)."""

import pytest

from repro.core.description import DemandVector, WorkloadDescription
from repro.errors import PlacementError, ReproError
from repro.rack.model import Assignment, Rack, RackMachine, RackSchedule
from repro.rack.scheduler import (
    RackScheduler,
    candidate_thread_counts,
    free_context_placement,
)
from repro.rack.validate import validate_schedule
from repro.sim.noise import NoiseModel
from repro.workloads.spec import WorkloadSpec


@pytest.fixture(scope="module")
def rack(request):
    testbox = request.getfixturevalue("testbox")
    testbox_md = request.getfixturevalue("testbox_md")
    return Rack(
        machines=(
            RackMachine("node-0", testbox, testbox_md),
            RackMachine("node-1", testbox, testbox_md),
        )
    )


def make_description(name, inst=4.0, dram=2.0, p=0.98, t1=20.0):
    return WorkloadDescription(
        name=name,
        machine_name="TESTBOX",
        t1=t1,
        demands=DemandVector(inst_rate=inst, cache_bw={"L1": 20.0}, dram_bw=dram),
        parallel_fraction=p,
        load_balance=0.8,
    )


class TestModel:
    def test_rack_rejects_duplicate_names(self, testbox, testbox_md):
        with pytest.raises(ReproError, match="duplicate"):
            Rack(
                machines=(
                    RackMachine("n", testbox, testbox_md),
                    RackMachine("n", testbox, testbox_md),
                )
            )

    def test_machine_lookup(self, rack):
        assert rack.machine("node-1").name == "node-1"
        with pytest.raises(ReproError, match="no rack machine"):
            rack.machine("node-9")

    def test_schedule_rejects_overlapping_assignments(self, rack, testbox):
        from repro.core.placement import Placement

        wd = make_description("w")
        pl = Placement(testbox.topology, (0, 1))
        with pytest.raises(PlacementError, match="assigned twice"):
            RackSchedule(
                rack=rack,
                assignments=[
                    Assignment(wd, "node-0", pl),
                    Assignment(make_description("x"), "node-0", pl),
                ],
            )

    def test_total_threads(self, rack):
        assert rack.total_hw_threads == 32


class TestFreeContextPlacement:
    def test_prefers_empty_cores(self, rack):
        machine = rack.machines[0]
        placement = free_context_placement(machine, occupied=set(), n_threads=4)
        assert all(c == 1 for c in placement.threads_per_core().values())

    def test_skips_occupied_contexts(self, rack):
        machine = rack.machines[0]
        placement = free_context_placement(machine, occupied={0, 1}, n_threads=2)
        assert not set(placement.hw_thread_ids) & {0, 1}

    def test_returns_none_when_full(self, rack):
        machine = rack.machines[0]
        assert free_context_placement(machine, set(range(16)), 1) is None

    def test_candidate_ladder(self):
        assert candidate_thread_counts(16) == [1, 2, 4, 8, 16]
        assert candidate_thread_counts(5) == [1, 2, 4, 5]
        assert candidate_thread_counts(1) == [1]

    def test_zero_free_contexts_yield_no_candidates(self):
        """A full machine degrades to an empty ladder, not a crash."""
        assert candidate_thread_counts(0) == []

    def test_negative_free_count_is_a_caller_bug(self):
        with pytest.raises(ReproError, match="negative"):
            candidate_thread_counts(-1)

    def test_placement_of_zero_threads_names_the_machine(self, rack):
        machine = rack.machines[0]
        with pytest.raises(ReproError, match="node-0.*at least one thread"):
            free_context_placement(machine, occupied=set(), n_threads=0)
        with pytest.raises(ReproError, match="node-0"):
            free_context_placement(machine, occupied=set(), n_threads=-3)


class TestScheduler:
    def test_two_workloads_spread_over_machines(self, rack):
        scheduler = RackScheduler(rack)
        schedule = scheduler.schedule(
            [make_description("a"), make_description("b")]
        )
        machines_used = {a.machine_name for a in schedule.assignments}
        assert machines_used == {"node-0", "node-1"}

    def test_memory_hogs_do_not_share_a_machine(self, rack):
        """Resource-aware packing: two DRAM-saturating workloads go to
        different machines even though either machine could hold both."""
        scheduler = RackScheduler(rack)
        hogs = [
            make_description("hog-a", inst=2.0, dram=25.0),
            make_description("hog-b", inst=2.0, dram=25.0),
        ]
        schedule = scheduler.schedule(hogs)
        a = schedule.assignment_for("hog-a").machine_name
        b = schedule.assignment_for("hog-b").machine_name
        assert a != b

    def test_every_workload_gets_predictions(self, rack):
        scheduler = RackScheduler(rack)
        names = [f"w{i}" for i in range(4)]
        schedule = scheduler.schedule([make_description(n) for n in names])
        assert set(schedule.predicted_times) == set(names)
        assert schedule.predicted_makespan_s > 0

    def test_rejects_duplicate_workloads(self, rack):
        scheduler = RackScheduler(rack)
        with pytest.raises(ReproError, match="duplicate"):
            scheduler.schedule([make_description("w"), make_description("w")])

    def test_rejects_empty_batch(self, rack):
        with pytest.raises(ReproError):
            RackScheduler(rack).schedule([])

    def test_overflow_detected(self, rack):
        """More workloads than hardware threads cannot all fit."""
        scheduler = RackScheduler(rack)
        batch = [make_description(f"w{i}") for i in range(33)]
        with pytest.raises(ReproError, match="does not fit"):
            scheduler.schedule(batch)

    def test_summary_renders(self, rack):
        schedule = RackScheduler(rack).schedule([make_description("a")])
        text = schedule.summary()
        assert "node-0" in text and "makespan" in text


class TestSchedulerInternals:
    def test_refinement_can_grow_into_leftover_space(self, rack):
        """After the fair-share pass, refinement lets a workload expand
        if space remains; total predicted times never get worse."""
        scheduler = RackScheduler(rack)
        wide = make_description("wide", p=0.999)
        unrefined = scheduler.schedule([wide], refinement_rounds=0)
        refined = scheduler.schedule([wide], refinement_rounds=1)
        assert (
            refined.predicted_makespan_s
            <= unrefined.predicted_makespan_s * (1 + 1e-9)
        )

    def test_repredict_after_removal_updates_residents(self, rack):
        from repro.rack.occupancy import FleetOccupancy

        scheduler = RackScheduler(rack)
        a = make_description("ra", inst=2.0, dram=20.0)
        b = make_description("rb", inst=2.0, dram=20.0)
        fleet = FleetOccupancy(rack)
        predicted_times = {}
        scheduler.admit_batch(fleet, predicted_times, [a, b])
        before = dict(predicted_times)
        # Remove one workload: its machine's residents must be
        # re-predicted (less contention -> not slower).
        scheduler._replace(fleet, predicted_times, a)
        assert predicted_times["rb"] <= before["rb"] * 1.05


class TestValidation:
    def test_schedule_predictions_track_measured_times(self, rack, testbox_gen):
        """End to end: profile real specs, schedule, co-run, compare."""
        specs = {
            "rack-mem": WorkloadSpec(
                name="rack-mem", work_ginstr=60.0, cpi=0.9, l1_bpi=8.0,
                dram_bpi=4.0, working_set_mib=32.0, parallel_fraction=0.99,
            ),
            "rack-cpu": WorkloadSpec(
                name="rack-cpu", work_ginstr=120.0, cpi=0.3, l1_bpi=3.0,
                working_set_mib=0.5, parallel_fraction=0.99,
            ),
        }
        descriptions = [testbox_gen.generate(s) for s in specs.values()]
        schedule = RackScheduler(rack).schedule(descriptions)
        validation = validate_schedule(schedule, specs, noise=NoiseModel(sigma=0.01))
        for name in specs:
            assert validation.error_percent(name) < 40.0
        assert validation.makespan_error_percent < 40.0

    def test_missing_spec_rejected(self, rack):
        schedule = RackScheduler(rack).schedule([make_description("ghost")])
        with pytest.raises(ReproError, match="no ground-truth spec"):
            validate_schedule(schedule, specs={})
