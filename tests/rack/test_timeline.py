"""Tests for the event-driven timeline scheduler."""

import pytest

from repro.core.description import DemandVector, WorkloadDescription
from repro.errors import ReproError
from repro.rack.model import Rack, RackMachine
from repro.rack.timeline import Timeline, TimelineScheduler, WorkloadRequest


@pytest.fixture(scope="module")
def rack(request):
    testbox = request.getfixturevalue("testbox")
    testbox_md = request.getfixturevalue("testbox_md")
    return Rack(
        machines=(
            RackMachine("node-0", testbox, testbox_md),
            RackMachine("node-1", testbox, testbox_md),
        )
    )


def make_description(name, inst=4.0, dram=2.0, p=0.98, t1=20.0):
    return WorkloadDescription(
        name=name,
        machine_name="TESTBOX",
        t1=t1,
        demands=DemandVector(inst_rate=inst, cache_bw={"L1": 20.0}, dram_bw=dram),
        parallel_fraction=p,
        load_balance=0.8,
    )


class TestBasicExecution:
    def test_single_request_runs_immediately(self, rack):
        scheduler = TimelineScheduler(rack)
        timeline = scheduler.run([WorkloadRequest(make_description("solo"))])
        entry = timeline.entry_for("solo")
        assert entry.start_s == 0.0
        assert entry.queueing_delay_s == 0.0
        assert entry.duration_s > 0
        assert timeline.makespan_s == entry.end_s

    def test_all_requests_complete(self, rack):
        scheduler = TimelineScheduler(rack)
        requests = [WorkloadRequest(make_description(f"w{i}")) for i in range(5)]
        timeline = scheduler.run(requests)
        assert {e.workload_name for e in timeline.entries} == {
            f"w{i}" for i in range(5)
        }

    def test_arrival_times_respected(self, rack):
        scheduler = TimelineScheduler(rack)
        timeline = scheduler.run(
            [
                WorkloadRequest(make_description("early"), arrival_s=0.0),
                WorkloadRequest(make_description("late"), arrival_s=100.0),
            ]
        )
        assert timeline.entry_for("late").start_s >= 100.0
        assert timeline.entry_for("early").start_s == 0.0

    def test_negative_arrival_rejected(self):
        with pytest.raises(ReproError):
            WorkloadRequest(make_description("x"), arrival_s=-1.0)

    def test_duplicate_names_rejected(self, rack):
        scheduler = TimelineScheduler(rack)
        with pytest.raises(ReproError, match="duplicate"):
            scheduler.run(
                [
                    WorkloadRequest(make_description("w")),
                    WorkloadRequest(make_description("w")),
                ]
            )

    def test_empty_rejected(self, rack):
        with pytest.raises(ReproError):
            TimelineScheduler(rack).run([])


class TestQueueing:
    def test_oversubscribed_rack_queues_requests(self, rack):
        """With min_threads = a whole machine, only two can run at once;
        the rest wait for completions."""
        scheduler = TimelineScheduler(rack, min_threads=16)
        requests = [WorkloadRequest(make_description(f"w{i}")) for i in range(4)]
        timeline = scheduler.run(requests)
        starts = sorted(e.start_s for e in timeline.entries)
        assert starts[0] == 0.0 and starts[1] == 0.0
        assert starts[2] > 0.0 and starts[3] > 0.0
        # The third request starts exactly when the first machine frees.
        first_end = min(e.end_s for e in timeline.entries if e.start_s == 0.0)
        assert starts[2] == pytest.approx(first_end)

    def test_queueing_delay_accounting(self, rack):
        scheduler = TimelineScheduler(rack, min_threads=16)
        requests = [WorkloadRequest(make_description(f"w{i}")) for i in range(3)]
        timeline = scheduler.run(requests)
        delays = [e.queueing_delay_s for e in timeline.entries]
        assert sum(1 for d in delays if d > 0) == 1
        assert timeline.mean_queueing_delay_s == pytest.approx(sum(delays) / 3)

    def test_impossible_request_raises(self, rack):
        scheduler = TimelineScheduler(rack, min_threads=17)  # > any machine
        with pytest.raises(ReproError, match="can never start"):
            scheduler.run([WorkloadRequest(make_description("huge"))])


class TestPlacementQuality:
    def test_parallel_workload_gets_many_threads_on_idle_rack(self, rack):
        scheduler = TimelineScheduler(rack)
        timeline = scheduler.run(
            [WorkloadRequest(make_description("wide", p=0.999))]
        )
        assert timeline.entry_for("wide").placement.n_threads >= 8

    def test_serial_workload_gets_one_thread(self, rack):
        scheduler = TimelineScheduler(rack)
        timeline = scheduler.run(
            [WorkloadRequest(make_description("narrow", p=0.0))]
        )
        assert timeline.entry_for("narrow").placement.n_threads == 1

    def test_concurrent_memory_hogs_separate(self, rack):
        scheduler = TimelineScheduler(rack)
        timeline = scheduler.run(
            [
                WorkloadRequest(make_description("hog-a", inst=2.0, dram=25.0)),
                WorkloadRequest(make_description("hog-b", inst=2.0, dram=25.0)),
            ]
        )
        a = timeline.entry_for("hog-a")
        b = timeline.entry_for("hog-b")
        overlap = a.start_s < b.end_s and b.start_s < a.end_s
        if overlap:
            assert a.machine_name != b.machine_name


class TestTimelineValidation:
    def test_predictions_track_churn_aware_execution(self, rack, request):
        """Profile real specs, run the timeline scheduler, replay the
        timeline through the churn-aware simulator, compare makespans."""
        from repro.rack.validate import validate_timeline
        from repro.sim.noise import NoiseModel
        from repro.workloads.spec import WorkloadSpec

        testbox_gen = request.getfixturevalue("testbox_gen")
        specs = {
            "tl-mem": WorkloadSpec(
                name="tl-mem", work_ginstr=60.0, cpi=0.9, l1_bpi=8.0,
                dram_bpi=4.0, working_set_mib=32.0, parallel_fraction=0.99,
            ),
            "tl-cpu": WorkloadSpec(
                name="tl-cpu", work_ginstr=120.0, cpi=0.3, l1_bpi=3.0,
                working_set_mib=0.5, parallel_fraction=0.99,
            ),
            "tl-mid": WorkloadSpec(
                name="tl-mid", work_ginstr=80.0, cpi=0.5, l1_bpi=6.0,
                dram_bpi=2.0, working_set_mib=8.0, parallel_fraction=0.98,
            ),
        }
        requests = [
            WorkloadRequest(testbox_gen.generate(spec)) for spec in specs.values()
        ]
        scheduler = TimelineScheduler(rack)
        timeline = scheduler.run(requests)
        validation = validate_timeline(
            timeline, rack, specs, noise=NoiseModel(sigma=0.01)
        )
        assert validation.makespan_error_percent < 40.0
        assert set(validation.measured_ends) == set(specs)

    def test_missing_spec_rejected(self, rack):
        from repro.errors import ReproError
        from repro.rack.validate import validate_timeline

        timeline = TimelineScheduler(rack).run(
            [WorkloadRequest(make_description("ghost"))]
        )
        with pytest.raises(ReproError, match="no ground-truth spec"):
            validate_timeline(timeline, rack, specs={})


class TestGantt:
    def test_gantt_renders_all_rows(self, rack):
        scheduler = TimelineScheduler(rack)
        timeline = scheduler.run(
            [WorkloadRequest(make_description(f"w{i}")) for i in range(3)]
        )
        chart = timeline.gantt()
        for i in range(3):
            assert f"w{i}" in chart
        assert "#" in chart
