"""Property-based test: profiling recovers sane descriptions for any
plausible workload.

This is the end-to-end invariant behind Pandia's generality claim: the
six-run generator must produce a *valid, bounded* description for every
workload in the synthetic family, without crashing or producing wild
parameters — including for workloads it has never been tuned on.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.machine_desc import generate_machine_description
from repro.core.workload_desc import WorkloadDescriptionGenerator
from repro.hardware import machines
from repro.sim.noise import NO_NOISE
from repro.workloads.synthetic import random_spec

MACHINE = machines.get("TESTBOX")
MD = generate_machine_description(MACHINE, noise=NO_NOISE)
GENERATOR = WorkloadDescriptionGenerator(MACHINE, MD, noise=NO_NOISE)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=500))
def test_profiling_any_workload_yields_valid_description(seed):
    spec = random_spec(seed)
    wd = GENERATOR.generate(spec)

    # Validity is enforced by the dataclass; check plausibility bands.
    assert wd.t1 > 0
    assert 0.0 <= wd.parallel_fraction <= 1.0
    assert 0.0 <= wd.load_balance <= 1.0
    assert 0.0 <= wd.inter_socket_overhead < 0.5
    assert 0.0 <= wd.burstiness < 5.0
    assert len(wd.runs) == 6

    # The demand vector must reflect the spec's locality profile:
    # traffic ratios survive the round trip through the counters.
    d = wd.demands
    if spec.dram_bpi > 0.1:
        measured_ratio = d.dram_bw / d.inst_rate
        # LLC spill can only add DRAM traffic, never remove it.
        assert measured_ratio >= spec.dram_bpi * 0.9
