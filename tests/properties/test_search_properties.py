"""Property-based tests for the placement-search engine.

Pinned invariants:

* canonicalisation is idempotent and socket-permutation invariant;
* ``cache_hits + cache_misses == requests`` and
  ``evaluations == cache_misses`` for any request sequence, even with
  LRU eviction;
* ranked results are independent of worker count and chunk size.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.description import DemandVector, WorkloadDescription
from repro.core.machine_desc import generate_machine_description
from repro.core.placement import from_shapes
from repro.core.predictor import PandiaPredictor
from repro.core.workload_desc import WorkloadDescriptionGenerator
from repro.hardware import machines
from repro.hardware.topology import MachineTopology
from repro.search import (
    SearchEngine,
    canonical_key,
    canonical_representative,
    workload_fingerprint,
)
from repro.sim.noise import NO_NOISE
from repro.workloads import catalog

TOPO = MachineTopology(2, 4, 2)

shapes = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 4)).filter(lambda s: sum(s) <= 4),
    min_size=2,
    max_size=2,
).filter(lambda pair: sum(sum(s) for s in pair) > 0)


# -- canonicalisation -------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(pair=shapes)
def test_canonicalisation_is_idempotent(pair):
    placement = from_shapes(TOPO, pair)
    key = canonical_key(placement)
    representative = canonical_representative(TOPO, key)
    assert canonical_key(representative) == key


@settings(max_examples=100, deadline=None)
@given(pair=shapes)
def test_symmetric_placements_share_a_key(pair):
    forward = from_shapes(TOPO, pair)
    for permutation in itertools.permutations(pair):
        assert canonical_key(from_shapes(TOPO, list(permutation))) == canonical_key(
            forward
        )


@settings(max_examples=50, deadline=None)
@given(pair=shapes)
def test_fingerprint_tracks_model_parameters(pair):
    del pair  # fingerprints are placement-independent
    base = WorkloadDescription(
        name="w",
        machine_name="M",
        t1=10.0,
        demands=DemandVector(inst_rate=1.0),
        parallel_fraction=0.9,
    )
    same = WorkloadDescription(
        name="w",
        machine_name="M",
        t1=10.0,
        demands=DemandVector(inst_rate=1.0),
        parallel_fraction=0.9,
    )
    changed = WorkloadDescription(
        name="w",
        machine_name="M",
        t1=10.0,
        demands=DemandVector(inst_rate=1.0),
        parallel_fraction=0.8,
    )
    assert workload_fingerprint(base) == workload_fingerprint(same)
    assert workload_fingerprint(base) != workload_fingerprint(changed)


# -- cache accounting -------------------------------------------------------


class CountingPredictor:
    """Duck-typed predictor: constant-time predictions, call counting."""

    def __init__(self):
        self.calls = 0

    def predict(self, workload, placement):
        self.calls += 1
        from repro.core.predictor import Prediction

        return Prediction(
            workload_name=workload.name,
            machine_name="stub",
            placement=placement,
            amdahl=1.0,
            speedup=1.0,
            predicted_time_s=float(placement.n_threads),
            slowdowns=(1.0,),
            utilisations=(1.0,),
            iterations=1,
            converged=True,
        )


def _stub_workload():
    return WorkloadDescription(
        name="stub",
        machine_name="stub",
        t1=1.0,
        demands=DemandVector(inst_rate=1.0),
        parallel_fraction=1.0,
    )


@settings(max_examples=60, deadline=None)
@given(
    batches=st.lists(
        st.lists(shapes, min_size=1, max_size=6), min_size=1, max_size=4
    ),
    cache_size=st.integers(1, 8),
)
def test_hits_plus_misses_equals_requests(batches, cache_size):
    predictor = CountingPredictor()
    engine = SearchEngine(predictor, cache_size=cache_size)
    workload = _stub_workload()
    total = 0
    for batch in batches:
        placements = [from_shapes(TOPO, pair) for pair in batch]
        engine.evaluate(workload, placements)
        total += len(placements)
    stats = engine.stats
    assert stats.requests == total
    assert stats.cache_hits + stats.cache_misses == stats.requests
    assert stats.evaluations == stats.cache_misses == predictor.calls
    assert 0.0 <= stats.dedup_ratio <= 1.0


def test_repeat_lookups_are_hits():
    predictor = CountingPredictor()
    engine = SearchEngine(predictor)
    workload = _stub_workload()
    placements = [from_shapes(TOPO, [(2, 0), (0, 0)])] * 5
    engine.evaluate(workload, placements)
    engine.evaluate(workload, placements)
    assert engine.stats.requests == 10
    assert engine.stats.evaluations == 1
    assert engine.stats.cache_hits == 9


# -- worker-count / chunk-size independence ---------------------------------


@pytest.fixture(scope="module")
def real_setup():
    spec = machines.get("TESTBOX")
    md = generate_machine_description(spec, noise=NO_NOISE)
    wd = WorkloadDescriptionGenerator(spec, md, noise=NO_NOISE).generate(
        catalog.get("CG")
    )
    from repro.core.placement import enumerate_canonical

    return PandiaPredictor(md), wd, enumerate_canonical(spec.topology, max_threads=10)


@pytest.mark.parametrize("max_workers", [None, 2, 3])
@pytest.mark.parametrize("chunk_size", [1, 3, 16])
def test_results_independent_of_workers_and_chunks(
    real_setup, max_workers, chunk_size
):
    predictor, workload, placements = real_setup
    reference = SearchEngine(predictor).rank(workload, placements)
    with SearchEngine(
        predictor,
        max_workers=max_workers,
        executor="thread",
        chunk_size=chunk_size,
    ) as engine:
        ranked = engine.rank(workload, placements)
    assert [r.placement for r in ranked] == [r.placement for r in reference]
    assert [r.predicted_time_s for r in ranked] == [
        r.predicted_time_s for r in reference
    ]
