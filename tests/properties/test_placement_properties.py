"""Property-based tests for placement canonicalisation."""

from hypothesis import given, settings, strategies as st

from repro.core.placement import Placement, from_shapes
from repro.hardware.topology import MachineTopology

TOPO = MachineTopology(2, 4, 2)

shapes = st.tuples(
    st.tuples(st.integers(0, 4), st.integers(0, 4)).filter(lambda s: sum(s) <= 4),
    st.tuples(st.integers(0, 4), st.integers(0, 4)).filter(lambda s: sum(s) <= 4),
).filter(lambda pair: sum(pair[0]) + sum(pair[1]) > 0)


@settings(max_examples=100, deadline=None)
@given(pair=shapes)
def test_from_shapes_round_trips(pair):
    placement = from_shapes(TOPO, pair)
    assert placement.socket_shapes() == pair
    assert placement.n_threads == sum(o + 2 * t for o, t in pair)


@settings(max_examples=100, deadline=None)
@given(pair=shapes)
def test_canonical_key_is_socket_order_invariant(pair):
    forward = from_shapes(TOPO, pair)
    mirrored = from_shapes(TOPO, (pair[1], pair[0]))
    assert forward.canonical_key() == mirrored.canonical_key()


@settings(max_examples=100, deadline=None)
@given(pair=shapes)
def test_sort_key_leads_with_thread_count(pair):
    placement = from_shapes(TOPO, pair)
    assert placement.sort_key()[0] == placement.n_threads


@settings(max_examples=100, deadline=None)
@given(
    tids=st.lists(st.integers(0, 15), min_size=1, max_size=16, unique=True)
)
def test_threads_per_core_accounts_for_everything(tids):
    placement = Placement(TOPO, tuple(tids))
    counts = placement.threads_per_core()
    assert sum(counts.values()) == placement.n_threads
    assert all(1 <= c <= 2 for c in counts.values())
