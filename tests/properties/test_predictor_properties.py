"""Property-based tests for the Pandia predictor.

Invariants over randomly drawn workload descriptions and placements:

* slowdowns are >= 1 and bounded by the first iteration's maximum;
* the predicted speedup never exceeds Amdahl's bound;
* predictions are deterministic;
* utilisations equal f_initial / slowdown;
* scaling every capacity and demand together leaves results unchanged
  (the paper's unit-independence claim, Section 3).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.description import DemandVector, WorkloadDescription
from repro.core.machine_desc import MachineDescription
from repro.core.placement import Placement, enumerate_canonical
from repro.core.predictor import PandiaPredictor
from repro.hardware.topology import MachineTopology

TOPO = MachineTopology(2, 2, 2)
ALL_PLACEMENTS = enumerate_canonical(TOPO)


def make_md(scale=1.0):
    return MachineDescription(
        machine_name="prop",
        topology=TOPO,
        core_rate=10.0 * scale,
        core_rate_smt=12.0 * scale,
        cache_link_bw={"L1": 40.0 * scale},
        dram_bw_per_node=100.0 * scale,
        interconnect_bw=50.0 * scale,
    )


workloads = st.builds(
    lambda inst, l1, dram, p, os_, l, b: WorkloadDescription(
        name="prop",
        machine_name="prop",
        t1=100.0,
        demands=DemandVector(inst_rate=inst, cache_bw={"L1": l1}, dram_bw=dram),
        parallel_fraction=p,
        inter_socket_overhead=os_,
        load_balance=l,
        burstiness=b,
    ),
    inst=st.floats(0.5, 10.0),
    l1=st.floats(0.0, 50.0),
    dram=st.floats(0.0, 120.0),
    p=st.floats(0.5, 1.0),
    os_=st.floats(0.0, 0.2),
    l=st.floats(0.0, 1.0),
    b=st.floats(0.0, 1.0),
)

placement_indices = st.integers(min_value=0, max_value=len(ALL_PLACEMENTS) - 1)


@settings(max_examples=80, deadline=None)
@given(wd=workloads, idx=placement_indices)
def test_slowdowns_at_least_one_and_speedup_below_amdahl(wd, idx):
    pred = PandiaPredictor(make_md()).predict(wd, ALL_PLACEMENTS[idx])
    assert all(s >= 1.0 - 1e-9 for s in pred.slowdowns)
    assert pred.speedup <= pred.amdahl + 1e-9
    assert pred.speedup > 0


@settings(max_examples=60, deadline=None)
@given(wd=workloads, idx=placement_indices)
def test_prediction_deterministic(wd, idx):
    predictor = PandiaPredictor(make_md())
    a = predictor.predict(wd, ALL_PLACEMENTS[idx])
    b = predictor.predict(wd, ALL_PLACEMENTS[idx])
    assert a.speedup == b.speedup
    assert a.slowdowns == b.slowdowns


@settings(max_examples=60, deadline=None)
@given(wd=workloads, idx=placement_indices)
def test_utilisation_consistent_with_slowdown(wd, idx):
    pred = PandiaPredictor(make_md()).predict(wd, ALL_PLACEMENTS[idx])
    f_initial = pred.amdahl / pred.n_threads
    for f, s in zip(pred.utilisations, pred.slowdowns):
        assert f == pytest.approx(f_initial / s, rel=1e-9)


@settings(max_examples=40, deadline=None)
@given(wd=workloads, idx=placement_indices, scale=st.floats(0.1, 10.0))
def test_unit_independence(wd, idx, scale):
    """Section 3: 'so long as consistent units are used ... the exact
    scale is not significant' — scaling machine and workload rates
    together must leave slowdowns unchanged."""
    base = PandiaPredictor(make_md()).predict(wd, ALL_PLACEMENTS[idx])
    scaled_wd = WorkloadDescription(
        name="prop",
        machine_name="prop",
        t1=wd.t1,
        demands=DemandVector(
            inst_rate=wd.demands.inst_rate * scale,
            cache_bw={k: v * scale for k, v in wd.demands.cache_bw.items()},
            dram_bw=wd.demands.dram_bw * scale,
        ),
        parallel_fraction=wd.parallel_fraction,
        inter_socket_overhead=wd.inter_socket_overhead,
        load_balance=wd.load_balance,
        burstiness=wd.burstiness,
    )
    scaled = PandiaPredictor(make_md(scale)).predict(scaled_wd, ALL_PLACEMENTS[idx])
    assert scaled.speedup == pytest.approx(base.speedup, rel=1e-6)


@settings(max_examples=40, deadline=None)
@given(wd=workloads)
def test_single_thread_has_no_parallel_penalties(wd):
    pred = PandiaPredictor(make_md()).predict(wd, Placement(TOPO, (0,)))
    assert pred.amdahl == 1.0
    # One thread can still be slowed by its own oversubscription of a
    # resource, but never by communication or balancing.
    assert pred.slowdowns[0] >= 1.0
    assert pred.speedup == pytest.approx(1.0 / pred.slowdowns[0], rel=1e-9)
