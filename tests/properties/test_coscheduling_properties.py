"""Property-based tests for the co-scheduling predictor."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.coscheduling import CoSchedulePredictor, CoScheduledWorkload
from repro.core.description import DemandVector, WorkloadDescription
from repro.core.machine_desc import MachineDescription
from repro.core.placement import Placement
from repro.core.predictor import PandiaPredictor
from repro.hardware.topology import MachineTopology

TOPO = MachineTopology(2, 2, 2)
MD = MachineDescription(
    machine_name="prop",
    topology=TOPO,
    core_rate=10.0,
    core_rate_smt=12.0,
    cache_link_bw={"L1": 40.0},
    dram_bw_per_node=100.0,
    interconnect_bw=50.0,
)

workloads = st.builds(
    lambda inst, dram, p, os_, l, b: WorkloadDescription(
        name="w",
        machine_name="prop",
        t1=100.0,
        demands=DemandVector(inst_rate=inst, cache_bw={"L1": inst * 4}, dram_bw=dram),
        parallel_fraction=p,
        inter_socket_overhead=os_,
        load_balance=l,
        burstiness=b,
    ),
    inst=st.floats(0.5, 9.0),
    dram=st.floats(0.0, 90.0),
    p=st.floats(0.5, 1.0),
    os_=st.floats(0.0, 0.1),
    l=st.floats(0.0, 1.0),
    b=st.floats(0.0, 1.0),
)

#: Disjoint placement pairs on the 8-context machine.
PLACEMENT_PAIRS = [
    ((0, 1), (2, 3)),
    ((0, 4), (2, 6)),
    ((0,), (2, 3, 6)),
    ((0, 1, 2), (3,)),
]


@settings(max_examples=60, deadline=None)
@given(wd=workloads, idx=st.integers(0, len(PLACEMENT_PAIRS) - 1))
def test_single_job_equals_solo_predictor(wd, idx):
    tids, _ = PLACEMENT_PAIRS[idx]
    placement = Placement(TOPO, tids)
    solo = PandiaPredictor(MD).predict(wd, placement)
    joint = CoSchedulePredictor(MD).predict([CoScheduledWorkload(wd, placement)])
    assert joint.outcomes[0].speedup == pytest.approx(solo.speedup, rel=1e-9)


@settings(max_examples=60, deadline=None)
@given(a=workloads, b=workloads, idx=st.integers(0, len(PLACEMENT_PAIRS) - 1))
def test_neighbours_never_speed_you_up(a, b, idx):
    tids_a, tids_b = PLACEMENT_PAIRS[idx]
    a = WorkloadDescription(
        name="a", machine_name="prop", t1=a.t1, demands=a.demands,
        parallel_fraction=a.parallel_fraction,
        inter_socket_overhead=a.inter_socket_overhead,
        load_balance=a.load_balance, burstiness=a.burstiness,
    )
    b = WorkloadDescription(
        name="b", machine_name="prop", t1=b.t1, demands=b.demands,
        parallel_fraction=b.parallel_fraction,
        inter_socket_overhead=b.inter_socket_overhead,
        load_balance=b.load_balance, burstiness=b.burstiness,
    )
    predictor = CoSchedulePredictor(MD)
    alone = predictor.predict(
        [CoScheduledWorkload(a, Placement(TOPO, tids_a))]
    ).outcome_for("a")
    together = predictor.predict(
        [
            CoScheduledWorkload(a, Placement(TOPO, tids_a)),
            CoScheduledWorkload(b, Placement(TOPO, tids_b)),
        ]
    ).outcome_for("a")
    assert together.predicted_time_s >= alone.predicted_time_s * (1 - 1e-6)


@settings(max_examples=60, deadline=None)
@given(a=workloads, b=workloads, idx=st.integers(0, len(PLACEMENT_PAIRS) - 1))
def test_joint_prediction_order_independent(a, b, idx):
    tids_a, tids_b = PLACEMENT_PAIRS[idx]
    a = WorkloadDescription(
        name="a", machine_name="prop", t1=a.t1, demands=a.demands,
        parallel_fraction=a.parallel_fraction,
        inter_socket_overhead=a.inter_socket_overhead,
        load_balance=a.load_balance, burstiness=a.burstiness,
    )
    b = WorkloadDescription(
        name="b", machine_name="prop", t1=b.t1, demands=b.demands,
        parallel_fraction=b.parallel_fraction,
        inter_socket_overhead=b.inter_socket_overhead,
        load_balance=b.load_balance, burstiness=b.burstiness,
    )
    predictor = CoSchedulePredictor(MD)
    forward = predictor.predict(
        [
            CoScheduledWorkload(a, Placement(TOPO, tids_a)),
            CoScheduledWorkload(b, Placement(TOPO, tids_b)),
        ]
    )
    reverse = predictor.predict(
        [
            CoScheduledWorkload(b, Placement(TOPO, tids_b)),
            CoScheduledWorkload(a, Placement(TOPO, tids_a)),
        ]
    )
    assert forward.outcome_for("a").speedup == pytest.approx(
        reverse.outcome_for("a").speedup, rel=1e-9
    )
    assert forward.outcome_for("b").speedup == pytest.approx(
        reverse.outcome_for("b").speedup, rel=1e-9
    )


@settings(max_examples=40, deadline=None)
@given(wd=workloads, idx=st.integers(0, len(PLACEMENT_PAIRS) - 1))
def test_slowdowns_bounded_and_loads_finite(wd, idx):
    tids_a, tids_b = PLACEMENT_PAIRS[idx]
    joint = CoSchedulePredictor(MD).predict(
        [CoScheduledWorkload(wd, Placement(TOPO, tids_a + tids_b))]
    )
    outcome = joint.outcomes[0]
    assert all(s >= 1.0 - 1e-9 for s in outcome.slowdowns)
    assert outcome.speedup <= outcome.amdahl + 1e-9
    for key, load in joint.resource_loads.items():
        assert load >= 0
        assert key in joint.resource_capacities
