"""Property-based tests for the event-driven co-run simulation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import machines
from repro.sim.engine import Job, SimOptions, simulate
from repro.sim.events import ScheduledJob, simulate_timeline
from repro.sim.noise import NO_NOISE
from repro.workloads.synthetic import random_spec

QUIET = SimOptions(noise=NO_NOISE)
TESTBOX = machines.get("TESTBOX")

seeds = st.integers(min_value=0, max_value=5000)


@settings(max_examples=25, deadline=None)
@given(seed=seeds)
def test_lone_job_always_matches_steady_engine(seed):
    spec = random_spec(seed)
    timeline = simulate_timeline(TESTBOX, [ScheduledJob(spec, (0, 1))], QUIET)
    steady = simulate(TESTBOX, [Job(spec, (0, 1))], QUIET).job_results[0]
    assert timeline.result_for(spec.name).elapsed_s == pytest.approx(
        steady.elapsed_s, rel=1e-9
    )


@settings(max_examples=25, deadline=None)
@given(seed_a=seeds, seed_b=seeds, arrival=st.floats(0.0, 50.0))
def test_jobs_always_finish_after_they_arrive(seed_a, seed_b, arrival):
    a = random_spec(seed_a, name="job-a")
    b = random_spec(seed_b, name="job-b")
    timeline = simulate_timeline(
        TESTBOX,
        [
            ScheduledJob(a, (0, 1)),
            ScheduledJob(b, (2, 3), arrival_s=arrival),
        ],
        QUIET,
    )
    for name in ("job-a", "job-b"):
        result = timeline.result_for(name)
        assert result.end_s > result.arrival_s
        assert result.segments  # at least one execution segment


@settings(max_examples=25, deadline=None)
@given(seed_a=seeds, seed_b=seeds)
def test_churn_never_slower_than_steady_corun(seed_a, seed_b):
    """Removing a finished neighbour can only help the survivor, so the
    churn-aware end time is at most the steady co-run's (plus epsilon)."""
    a = random_spec(seed_a, name="job-a")
    b = random_spec(seed_b, name="job-b")
    timeline = simulate_timeline(
        TESTBOX,
        [ScheduledJob(a, (0, 1)), ScheduledJob(b, (2, 3))],
        QUIET,
    )
    steady = simulate(TESTBOX, [Job(a, (0, 1)), Job(b, (2, 3))], QUIET)
    steady_times = {jr.job.spec.name: jr.elapsed_s for jr in steady.job_results}
    for name in ("job-a", "job-b"):
        assert (
            timeline.result_for(name).elapsed_s
            <= steady_times[name] * (1 + 1e-6)
        )


@settings(max_examples=25, deadline=None)
@given(seed=seeds, gap=st.floats(0.1, 10.0))
def test_serial_reuse_is_sum_of_solo_times(seed, gap):
    """Back-to-back jobs on the same contexts don't interact."""
    a = random_spec(seed, name="job-a")
    b = random_spec(seed + 1, name="job-b")
    t_a = simulate(TESTBOX, [Job(a, (0, 1))], QUIET).job_results[0].elapsed_s
    t_b = simulate(TESTBOX, [Job(b, (0, 1))], QUIET).job_results[0].elapsed_s
    timeline = simulate_timeline(
        TESTBOX,
        [
            ScheduledJob(a, (0, 1)),
            ScheduledJob(b, (0, 1), arrival_s=t_a + gap),
        ],
        QUIET,
    )
    assert timeline.result_for("job-b").elapsed_s == pytest.approx(t_b, rel=1e-6)
    assert timeline.makespan_s == pytest.approx(t_a + gap + t_b, rel=1e-6)
