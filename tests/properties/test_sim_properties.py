"""Property-based tests for the ground-truth simulator.

Invariants that must hold for *any* plausible workload, checked with
hypothesis over the synthetic workload space:

* determinism: identical inputs give identical outputs;
* no resource runs above its capacity at convergence;
* per-thread rates never exceed the standalone limit;
* adding contention never speeds a workload up;
* counters are consistent with the work performed.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import machines
from repro.sim.demand import DemandModel, JobSpecOnMachine
from repro.sim.engine import Job, SimOptions, simulate
from repro.sim.noise import NO_NOISE
from repro.workloads.synthetic import random_spec

QUIET = SimOptions(noise=NO_NOISE)
TESTBOX = machines.get("TESTBOX")

seeds = st.integers(min_value=0, max_value=10_000)
thread_counts = st.integers(min_value=1, max_value=8)


def _placement(n):
    """n threads spread over the TESTBOX in a fixed interleaved order."""
    order = [0, 4, 1, 5, 8, 12, 2, 6]
    return tuple(order[:n])


@settings(max_examples=40, deadline=None)
@given(seed=seeds, n=thread_counts)
def test_simulation_is_deterministic(seed, n):
    spec = random_spec(seed)
    a = simulate(TESTBOX, [Job(spec, _placement(n))], QUIET)
    b = simulate(TESTBOX, [Job(spec, _placement(n))], QUIET)
    assert a.job_results[0].elapsed_s == b.job_results[0].elapsed_s
    assert a.job_results[0].thread_rates == b.job_results[0].thread_rates


@settings(max_examples=40, deadline=None)
@given(seed=seeds, n=thread_counts)
def test_no_resource_exceeds_capacity(seed, n):
    spec = random_spec(seed)
    sim = simulate(TESTBOX, [Job(spec, _placement(n))], QUIET)
    for key, load in sim.resource_loads.items():
        assert load <= sim.resource_capacities[key] * (1 + 1e-4), key


@settings(max_examples=40, deadline=None)
@given(seed=seeds, n=thread_counts)
def test_rates_positive_and_bounded(seed, n):
    spec = random_spec(seed)
    model = DemandModel(TESTBOX, [JobSpecOnMachine(spec, _placement(n))])
    sim = simulate(TESTBOX, [Job(spec, _placement(n))], QUIET)
    rates = sim.job_results[0].thread_rates
    assert all(r > 0 for r in rates)
    for info, rate in zip(model.threads, rates):
        assert rate <= info.limit * (1 + 1e-6)


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_single_thread_time_matches_work_over_rate(seed):
    spec = random_spec(seed)
    result = simulate(TESTBOX, [Job(spec, (0,))], QUIET).job_results[0]
    rate = result.thread_rates[0]
    assert result.elapsed_s == pytest.approx(spec.work_ginstr / rate, rel=1e-6)


@settings(max_examples=30, deadline=None)
@given(seed=seeds, n=st.integers(min_value=2, max_value=8))
def test_instructions_counter_matches_total_work(seed, n):
    spec = random_spec(seed)
    result = simulate(TESTBOX, [Job(spec, _placement(n))], QUIET).job_results[0]
    assert result.counters.instructions_g == pytest.approx(
        spec.total_work_ginstr(n), rel=1e-6
    )


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_coscheduled_stressor_never_helps(seed):
    from repro.sim.stressors import cpu_stressor

    spec = random_spec(seed)
    alone = simulate(TESTBOX, [Job(spec, (0, 1))], QUIET).job_results[0].elapsed_s
    stressed = simulate(
        TESTBOX,
        [Job(spec, (0, 1)), Job(cpu_stressor(), (8, 9))],
        QUIET,
    ).job_results[0].elapsed_s
    # Slack an order above the solver's 1e-6 fixed-point tolerance.
    assert stressed >= alone * (1 - 1e-5)


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_two_spread_threads_never_slower_than_one_plus_comm(seed):
    """Adding a second thread on an idle far core cannot slow the
    workload beyond its communication stretch and turbo drop."""
    spec = random_spec(seed).with_(parallel_fraction=0.999, comm_fraction=0.0)
    t1 = simulate(TESTBOX, [Job(spec, (0,))], QUIET).job_results[0].elapsed_s
    t2 = simulate(TESTBOX, [Job(spec, (0, 4))], QUIET).job_results[0].elapsed_s
    # Worst case: no scaling benefit at all, plus the turbo drop from a
    # second active core (bounded by max/all-core turbo ratio).
    turbo_slack = TESTBOX.turbo.max_turbo_ghz / TESTBOX.turbo.all_core_turbo_ghz
    assert t2 <= t1 * turbo_slack * (1 + 1e-6)
