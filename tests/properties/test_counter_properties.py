"""Property tests: counters account exactly for the work performed."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import machines
from repro.sim.engine import Job, SimOptions, simulate
from repro.sim.noise import NO_NOISE
from repro.workloads.synthetic import random_spec

QUIET = SimOptions(noise=NO_NOISE)
TESTBOX = machines.get("TESTBOX")

seeds = st.integers(min_value=0, max_value=4000)
counts = st.integers(min_value=1, max_value=6)


def _placement(n):
    order = [0, 4, 1, 5, 2, 6]
    return tuple(order[:n])


@settings(max_examples=30, deadline=None)
@given(seed=seeds, n=counts)
def test_private_cache_traffic_is_work_times_bpi(seed, n):
    spec = random_spec(seed)
    result = simulate(TESTBOX, [Job(spec, _placement(n))], QUIET).job_results[0]
    work = result.counters.instructions_g
    assert result.counters.cache_gb.get("L1", 0.0) == pytest.approx(
        work * spec.l1_bpi, rel=1e-6
    )
    assert result.counters.cache_gb.get("L2", 0.0) == pytest.approx(
        work * spec.l2_bpi, rel=1e-6
    )


@settings(max_examples=30, deadline=None)
@given(seed=seeds, n=counts)
def test_dram_traffic_never_below_the_specs_own(seed, n):
    """LLC spill can only add DRAM traffic, never remove it."""
    spec = random_spec(seed)
    result = simulate(TESTBOX, [Job(spec, _placement(n))], QUIET).job_results[0]
    work = result.counters.instructions_g
    total_dram = sum(result.counters.dram_gb_per_node.values())
    assert total_dram >= work * spec.dram_bpi * (1 - 1e-9)


@settings(max_examples=30, deadline=None)
@given(seed=seeds, n=counts)
def test_link_traffic_bounded_by_remote_dram_share(seed, n):
    """Interconnect bytes are exactly the remote slice of DRAM bytes."""
    spec = random_spec(seed)
    result = simulate(TESTBOX, [Job(spec, _placement(n))], QUIET).job_results[0]
    link = sum(result.counters.link_gb.values())
    dram = sum(result.counters.dram_gb_per_node.values())
    assert link <= dram * (1 + 1e-9)
    if n == 1:  # one thread, one active socket: nothing crosses
        assert link == 0.0


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_noise_only_scales_elapsed_not_totals(seed):
    spec = random_spec(seed)
    quiet = simulate(TESTBOX, [Job(spec, _placement(2))], QUIET).job_results[0]
    noisy = simulate(TESTBOX, [Job(spec, _placement(2))], SimOptions()).job_results[0]
    assert noisy.counters.instructions_g == pytest.approx(
        quiet.counters.instructions_g
    )
    assert noisy.elapsed_s != quiet.elapsed_s
