"""Property-based round-trip tests for description serialisation."""

from hypothesis import given, settings, strategies as st

from repro.core.description import DemandVector, WorkloadDescription
from repro.io.serialization import description_from_json, description_to_json

cache_levels = st.dictionaries(
    st.sampled_from(["L1", "L2", "L3"]),
    st.floats(min_value=0.0, max_value=500.0),
    max_size=3,
)

descriptions = st.builds(
    lambda inst, cache, dram, lam, io, t1, p, os_, l, b: WorkloadDescription(
        name="prop",
        machine_name="anywhere",
        t1=t1,
        demands=DemandVector(
            inst_rate=inst,
            cache_bw=cache,
            dram_bw=dram,
            numa_local_fraction=lam,
            io_bw=io,
        ),
        parallel_fraction=p,
        inter_socket_overhead=os_,
        load_balance=l,
        burstiness=b,
    ),
    inst=st.floats(min_value=0.01, max_value=100.0),
    cache=cache_levels,
    dram=st.floats(min_value=0.0, max_value=200.0),
    lam=st.floats(min_value=0.0, max_value=1.0),
    io=st.floats(min_value=0.0, max_value=50.0),
    t1=st.floats(min_value=0.001, max_value=1e6),
    p=st.floats(min_value=0.0, max_value=1.0),
    os_=st.floats(min_value=0.0, max_value=10.0),
    l=st.floats(min_value=0.0, max_value=1.0),
    b=st.floats(min_value=0.0, max_value=10.0),
)


@settings(max_examples=150, deadline=None)
@given(wd=descriptions)
def test_round_trip_preserves_everything(wd):
    loaded = description_from_json(description_to_json(wd))
    assert loaded == wd


@settings(max_examples=60, deadline=None)
@given(wd=descriptions)
def test_serialisation_is_stable(wd):
    once = description_to_json(wd)
    twice = description_to_json(description_from_json(once))
    assert once == twice
