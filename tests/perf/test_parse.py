"""Tests for the perf stat output parser (canned real-world shapes)."""

import pytest

from repro.errors import ProfilingError
from repro.perf.parse import parse_perf_stat, require_events

#: Typical `perf stat -x, -e ...` stderr from an Intel server.
CANNED = """\
2000000000,ns,duration_time,2000000000,100.00,,
15234567890,,instructions,1999876543,100.00,1.52,insn per cycle
5123456789,,L1-dcache-loads,1999876543,100.00,,
812345678,,L1-dcache-stores,1999812345,99.80,,
91234567,,L1-dcache-load-misses,1500123456,75.01,,
12345678,,LLC-loads,1500123456,75.01,,
2345678,,LLC-stores,1499987654,74.99,,
1234567,,LLC-load-misses,1499987654,74.99,,
<not supported>,,LLC-store-misses,0,100.00,,
"""

HUMAN_FOOTER = """\
1000000,,instructions,100,100.00,,

       2.001234567 seconds time elapsed
"""


class TestParse:
    def test_parses_all_events(self):
        events = parse_perf_stat(CANNED)
        assert events["instructions"].value == 15234567890
        assert events["L1-dcache-loads"].value == 5123456789
        assert events["duration_time"].value == 2e9

    def test_not_supported_is_none(self):
        events = parse_perf_stat(CANNED)
        assert events["LLC-store-misses"].value is None
        assert not events["LLC-store-misses"].supported

    def test_multiplexing_fraction(self):
        events = parse_perf_stat(CANNED)
        assert events["LLC-loads"].enabled_fraction == pytest.approx(0.7501)
        assert events["instructions"].enabled_fraction == pytest.approx(1.0)

    def test_human_elapsed_footer(self):
        events = parse_perf_stat(HUMAN_FOOTER)
        assert events["duration_time"].value == pytest.approx(2.001234567e9)

    def test_blank_and_comment_lines_tolerated(self):
        events = parse_perf_stat("# started\n\n123,,instructions,1,100.00,,\n")
        assert events["instructions"].value == 123

    def test_empty_output_rejected(self):
        with pytest.raises(ProfilingError, match="no events"):
            parse_perf_stat("")

    def test_garbage_value_rejected(self):
        with pytest.raises(ProfilingError, match="unparseable"):
            parse_perf_stat("abc,,instructions,1,100.00,,")

    def test_missing_event_name_rejected(self):
        with pytest.raises(ProfilingError, match="without event name"):
            parse_perf_stat("123,,,1,100.00,,")


class TestRequireEvents:
    def test_extracts_values(self):
        events = parse_perf_stat(CANNED)
        got = require_events(events, ["instructions", "LLC-loads"])
        assert got == {
            "instructions": 15234567890,
            "LLC-loads": 12345678,
        }

    def test_missing_event_reported(self):
        events = parse_perf_stat(CANNED)
        with pytest.raises(ProfilingError, match="LLC-store-misses"):
            require_events(events, ["LLC-store-misses"])
