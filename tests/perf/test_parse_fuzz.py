"""Fuzz the perf stat parser: arbitrary text never crashes it.

The parser ingests stderr from an external tool; whatever arrives, it
must either produce events or raise :class:`ProfilingError` — never an
unrelated exception.
"""

from hypothesis import given, settings, strategies as st

from repro.errors import ProfilingError
from repro.perf.parse import parse_perf_stat

printable_lines = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\x00"),
    max_size=200,
)


@settings(max_examples=200, deadline=None)
@given(text=printable_lines)
def test_arbitrary_text_is_handled(text):
    try:
        events = parse_perf_stat(text)
    except ProfilingError:
        return
    assert events  # if it parsed, it found at least one event
    for event in events.values():
        assert event.name
        assert event.value is None or isinstance(event.value, float)


@settings(max_examples=100, deadline=None)
@given(
    value=st.floats(min_value=0, max_value=1e15, allow_nan=False),
    name=st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="-_"),
        min_size=1,
        max_size=30,
    ),
    pct=st.floats(min_value=0, max_value=100, allow_nan=False),
)
def test_wellformed_lines_always_parse(value, name, pct):
    line = f"{value},,{name},123,{pct:.2f},,"
    events = parse_perf_stat(line)
    assert name in events
    assert events[name].value == value
    written = float(f"{pct:.2f}")  # what actually went on the wire
    assert abs(events[name].enabled_fraction - written / 100.0) < 1e-9
