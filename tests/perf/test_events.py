"""Tests for event-to-counter conversion."""

import pytest

from repro.errors import ProfilingError
from repro.perf.events import EVENT_SETS, counters_from_events
from repro.perf.parse import PerfEvent


def make_events(**values):
    events = {
        "duration_time": PerfEvent("duration_time", 2e9),  # 2 seconds
        "instructions": PerfEvent("instructions", 10e9),
    }
    for name, value in values.items():
        key = name.replace("_", "-")
        events[key] = PerfEvent(key, value)
    return events


class TestConversion:
    def test_instruction_rate(self):
        counters = counters_from_events(make_events())
        assert counters.elapsed_s == 2.0
        assert counters.instruction_rate == pytest.approx(5.0)  # Ginstr/s

    def test_cache_traffic_is_accesses_times_line(self):
        counters = counters_from_events(
            make_events(**{"L1_dcache_loads": 1e9, "L1_dcache_stores": 0.5e9})
        )
        # 1.5e9 accesses x 64B = 96 GB over 2s = 48 GB/s
        assert counters.cache_bandwidth("L1") == pytest.approx(48.0)

    def test_llc_misses_become_dram_traffic(self):
        counters = counters_from_events(
            make_events(**{"LLC_load_misses": 1e9, "LLC_store_misses": 1e9})
        )
        assert counters.dram_bandwidth_total == pytest.approx(2e9 * 64 / 1e9 / 2)

    def test_unsupported_events_leave_level_at_zero(self):
        events = make_events()
        events["LLC-loads"] = PerfEvent("LLC-loads", None)
        counters = counters_from_events(events)
        assert counters.cache_bandwidth("L3") == 0.0

    def test_missing_duration_rejected(self):
        events = make_events()
        del events["duration_time"]
        with pytest.raises(ProfilingError):
            counters_from_events(events)

    def test_zero_duration_rejected(self):
        events = make_events()
        events["duration_time"] = PerfEvent("duration_time", 0.0)
        with pytest.raises(ProfilingError, match="duration"):
            counters_from_events(events)


class TestEventSets:
    def test_every_set_includes_duration(self):
        for name, events in EVENT_SETS.items():
            assert "duration_time" in events, name

    def test_workload_set_covers_every_level(self):
        joined = ",".join(EVENT_SETS["workload"])
        for token in ("instructions", "L1-dcache", "LLC-loads", "LLC-load-misses"):
            assert token in joined
