"""Tests for the pinned-run and stressor command builders."""

import pytest

from repro.errors import ProfilingError
from repro.perf.command import pinned_run_command, stressor_command


class TestPinnedRun:
    def test_basic_shape(self):
        cmd = pinned_run_command(["./bench", "--size", "B"], [0, 2, 1])
        argv = list(cmd.argv)
        assert argv[:3] == ["perf", "stat", "-x,"]
        assert "-e" in argv
        dash = argv.index("--")
        assert argv[dash + 1 : dash + 4] == ["taskset", "-c", "0,1,2"]
        assert argv[-3:] == ["./bench", "--size", "B"]

    def test_events_match_requested_set(self):
        cmd = pinned_run_command(["./a"], [0], event_set="core")
        joined = ",".join(cmd.events)
        assert "instructions" in joined
        assert "LLC" not in joined

    def test_interleave_policy(self):
        cmd = pinned_run_command(["./a"], [0], interleave_nodes=[1, 0])
        assert "numactl" in cmd.argv
        assert "--interleave=0,1" in cmd.argv

    def test_bind_policy(self):
        cmd = pinned_run_command(["./a"], [0], bind_nodes=[1])
        assert "--membind=1" in cmd.argv

    def test_conflicting_policies_rejected(self):
        with pytest.raises(ProfilingError, match="conflict"):
            pinned_run_command(["./a"], [0], interleave_nodes=[0], bind_nodes=[1])

    def test_repeat_flag(self):
        cmd = pinned_run_command(["./a"], [0], repeat=3)
        argv = list(cmd.argv)
        assert argv[argv.index("-r") + 1] == "3"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workload_argv": [], "hw_thread_ids": [0]},
            {"workload_argv": ["./a"], "hw_thread_ids": []},
            {"workload_argv": ["./a"], "hw_thread_ids": [0, 0]},
            {"workload_argv": ["./a"], "hw_thread_ids": [0], "event_set": "nope"},
            {"workload_argv": ["./a"], "hw_thread_ids": [0], "repeat": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ProfilingError):
            pinned_run_command(**kwargs)

    def test_str_is_shell_like(self):
        cmd = pinned_run_command(["./a"], [0])
        assert str(cmd).startswith("perf stat -x,")


class TestStressor:
    def test_cpu_stressor_counts_instructions(self):
        cmd = stressor_command("cpu", [0, 1])
        assert "stress-ng" in cmd.argv
        assert "--cpu" in cmd.argv
        assert "instructions" in ",".join(cmd.events)

    def test_dram_stressor_binds_memory(self):
        cmd = stressor_command("dram", [0], bind_nodes=[0])
        assert "--stream" in cmd.argv
        assert "--membind=0" in cmd.argv

    def test_cache_level_selected(self):
        cmd = stressor_command("l2", [0])
        argv = list(cmd.argv)
        assert argv[argv.index("--cache-level") + 1] == "2"

    def test_thread_count_propagates(self):
        cmd = stressor_command("cpu", [0, 1, 2, 3])
        argv = list(cmd.argv)
        assert argv[argv.index("--cpu") + 1] == "4"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProfilingError, match="unknown stressor"):
            stressor_command("gpu", [0])

    def test_duration_validated(self):
        with pytest.raises(ProfilingError):
            stressor_command("cpu", [0], duration_s=0.0)
