"""End-to-end integration tests: the full Pandia pipeline.

These exercise the complete flow the paper describes — stressors →
machine description → six profiling runs → predictions → evaluation —
and assert the qualitative claims that make Pandia *useful*, on the
fast TESTBOX machine.
"""

import pytest

from repro.analysis.evaluation import evaluate_workload
from repro.core.optimizer import best_placement
from repro.core.placement import enumerate_canonical
from repro.core.sweep import spread_placement
from repro.sim.noise import NoiseModel
from repro.sim.run import run_workload
from repro.workloads.spec import WorkloadSpec


@pytest.fixture(scope="module")
def placements(request):
    testbox = request.getfixturevalue("testbox")
    return enumerate_canonical(testbox.topology)


def _evaluate(testbox, gen, predictor, placements, spec):
    description = gen.generate(spec)
    return evaluate_workload(
        testbox, spec, description, predictor, placements,
        noise=NoiseModel(sigma=0.01),
    )


class TestEndToEndAccuracy:
    def test_balanced_workload_predicts_well(
        self, testbox, testbox_gen, testbox_predictor, placements
    ):
        spec = WorkloadSpec(
            name="e2e-balanced", work_ginstr=100.0, cpi=0.5, l1_bpi=6.0,
            l2_bpi=2.0, l3_bpi=1.0, dram_bpi=1.0, working_set_mib=8.0,
            parallel_fraction=0.99, load_balance=0.6, burst_duty=0.9,
            comm_fraction=0.003,
        )
        evaluation = _evaluate(testbox, testbox_gen, testbox_predictor, placements, spec)
        assert evaluation.errors().median_error < 12.0
        assert evaluation.placement_regret_percent() < 8.0

    def test_memory_bound_workload_peak_detected(
        self, testbox, testbox_gen, testbox_predictor, placements
    ):
        """A DRAM-saturating workload peaks well below the full machine,
        and Pandia's chosen placement must be nearly as good."""
        spec = WorkloadSpec(
            name="e2e-membound", work_ginstr=60.0, cpi=0.9, l1_bpi=8.0,
            dram_bpi=6.0, working_set_mib=64.0, parallel_fraction=0.995,
            load_balance=0.3,
        )
        evaluation = _evaluate(testbox, testbox_gen, testbox_predictor, placements, spec)
        assert evaluation.peak_measured_threads() < testbox.topology.n_hw_threads
        assert evaluation.placement_regret_percent() < 10.0

    def test_compute_bound_workload_wants_whole_machine(
        self, testbox, testbox_gen, testbox_predictor, placements
    ):
        spec = WorkloadSpec(
            name="e2e-compute", work_ginstr=200.0, cpi=0.3, l1_bpi=3.0,
            working_set_mib=0.5, parallel_fraction=0.999, load_balance=0.9,
        )
        description = testbox_gen.generate(spec)
        placement, _ = best_placement(testbox_predictor, description, placements)
        # Compute-bound with SMT gain: every context helps.
        assert placement.n_threads >= testbox.topology.n_cores


class TestPredictionAgainstTimedRun:
    """Spot check absolute predictions against fresh timed runs."""

    @pytest.mark.parametrize("n_threads", [2, 4, 8])
    def test_spread_placements(
        self, testbox, testbox_gen, testbox_predictor, n_threads
    ):
        spec = WorkloadSpec(
            name="e2e-spot", work_ginstr=80.0, cpi=0.6, l1_bpi=6.0,
            dram_bpi=1.5, working_set_mib=16.0, parallel_fraction=0.98,
            load_balance=0.5, comm_fraction=0.004,
        )
        description = testbox_gen.generate(spec)
        placement = spread_placement(testbox.topology, n_threads)
        predicted = testbox_predictor.predict(description, placement).predicted_time_s
        measured = run_workload(
            testbox, spec, placement.hw_thread_ids, run_tag="e2e-spot"
        ).elapsed_s
        assert predicted == pytest.approx(measured, rel=0.35)


class TestCrossMachinePortability:
    def test_testbox_description_useful_on_x3(self, testbox, testbox_gen, x3, x3_md):
        """A description from the small machine still ranks X3-2
        placements sensibly (Figure 11c/d at integration-test scale)."""
        from repro.core.predictor import PandiaPredictor

        spec = WorkloadSpec(
            name="e2e-port", work_ginstr=80.0, cpi=0.5, l1_bpi=6.0,
            dram_bpi=2.0, working_set_mib=16.0, parallel_fraction=0.99,
            load_balance=0.5, comm_fraction=0.004,
        )
        ported = testbox_gen.generate(spec)
        predictor = PandiaPredictor(x3_md)
        few = spread_placement(x3.topology, 2)
        many = spread_placement(x3.topology, 16)
        t_few = predictor.predict(ported, few).predicted_time_s
        t_many = predictor.predict(ported, many).predicted_time_s
        m_few = run_workload(x3, spec, few.hw_thread_ids, run_tag="port").elapsed_s
        m_many = run_workload(x3, spec, many.hw_thread_ids, run_tag="port").elapsed_s
        # The ordering (more threads is better here) must survive porting.
        assert (t_many < t_few) == (m_many < m_few)
