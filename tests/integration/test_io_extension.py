"""The Section-8 I/O extension, end to end.

"We aim to relax our assumption that workloads do not perform
significant I/O — it may be that off-machine communication links can be
accommodated directly in our machine models in terms of available
bandwidth or I/O operation rates."  TESTBOX models a ~50 GbE NIC; an
I/O-heavy workload must be measured, described and predicted against
it like any other bandwidth resource.
"""

import pytest

from repro.core.machine_desc import generate_machine_description
from repro.core.placement import Placement
from repro.core.predictor import PandiaPredictor
from repro.core.workload_desc import WorkloadDescriptionGenerator
from repro.errors import SimulationError
from repro.hardware import machines
from repro.sim.engine import Job, SimOptions, simulate
from repro.sim.noise import NO_NOISE
from repro.sim.run import run_workload
from repro.workloads.spec import WorkloadSpec

QUIET = SimOptions(noise=NO_NOISE)


@pytest.fixture(scope="module")
def io_workload():
    return WorkloadSpec(
        name="io-server", work_ginstr=60.0, cpi=0.6, l1_bpi=5.0,
        dram_bpi=0.8, io_bpi=1.5, working_set_mib=4.0,
        parallel_fraction=0.99, load_balance=0.8,
    )


class TestSubstrate:
    def test_nic_saturates_with_enough_threads(self, testbox, io_workload):
        tids = tuple(c.hw_thread_ids[0] for c in testbox.topology.cores)
        sim = simulate(testbox, [Job(io_workload, tids)], QUIET)
        assert sim.resource_loads[("nic", 0)] == pytest.approx(
            testbox.nic_gbs, rel=0.01
        )

    def test_nic_counters_report_traffic(self, testbox, io_workload):
        run = run_workload(testbox, io_workload, (0,), noise=NO_NOISE)
        assert run.counters.nic_gb == pytest.approx(60.0 * 1.5)
        assert run.counters.nic_bandwidth > 0

    def test_io_on_niclless_machine_rejected(self, x5, io_workload):
        with pytest.raises(SimulationError, match="no off-machine link"):
            simulate(x5, [Job(io_workload, (0,))], QUIET)

    def test_io_free_workloads_never_touch_the_nic(self, testbox):
        plain = WorkloadSpec(name="plain", work_ginstr=10.0, cpi=0.5)
        sim = simulate(testbox, [Job(plain, (0,))], QUIET)
        assert ("nic", 0) not in sim.resource_loads


class TestMachineDescription:
    def test_nic_bandwidth_measured(self, testbox):
        md = generate_machine_description(testbox, noise=NO_NOISE)
        assert md.nic_bw == pytest.approx(testbox.nic_gbs, rel=0.02)
        assert "NIC" in md.summary()

    def test_nicless_machine_reports_zero(self, x5):
        md = generate_machine_description(x5, noise=NO_NOISE)
        assert md.nic_bw == 0.0


class TestPandiaOnIoWorkloads:
    @pytest.fixture(scope="class")
    def setup(self, request, io_workload):
        testbox = request.getfixturevalue("testbox")
        md = generate_machine_description(testbox, noise=NO_NOISE)
        wd = WorkloadDescriptionGenerator(testbox, md, noise=NO_NOISE).generate(io_workload)
        return testbox, md, wd

    def test_demand_vector_records_io(self, setup, io_workload):
        _, _, wd = setup
        expected = wd.demands.inst_rate * io_workload.io_bpi
        assert wd.demands.io_bw == pytest.approx(expected, rel=0.02)

    def test_prediction_sees_the_nic_bottleneck(self, setup):
        testbox, md, wd = setup
        predictor = PandiaPredictor(md)
        tids = tuple(c.hw_thread_ids[0] for c in testbox.topology.cores)
        prediction = predictor.predict(wd, Placement(testbox.topology, tids))
        assert prediction.bottleneck() == ("nic", 0)

    def test_prediction_tracks_measurement(self, setup, io_workload):
        testbox, md, wd = setup
        predictor = PandiaPredictor(md)
        tids = tuple(c.hw_thread_ids[0] for c in testbox.topology.cores)
        predicted = predictor.predict(
            wd, Placement(testbox.topology, tids)
        ).predicted_time_s
        measured = run_workload(testbox, io_workload, tids, noise=NO_NOISE).elapsed_s
        assert predicted == pytest.approx(measured, rel=0.35)

    def test_io_workloads_should_not_take_the_whole_machine(self, setup):
        """The decision Pandia enables: the NIC gates at ~4 threads, so
        right-sizing confines the server to a fraction of the box."""
        from repro.core.optimizer import rightsize
        from repro.core.placement import enumerate_canonical

        testbox, md, wd = setup
        predictor = PandiaPredictor(md)
        placements = enumerate_canonical(testbox.topology)
        small, _ = rightsize(predictor, wd, placements, tolerance=0.05)
        assert small.n_threads <= testbox.topology.n_hw_threads // 2
