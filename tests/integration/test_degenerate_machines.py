"""The full pipeline on degenerate machines.

Pandia's profiling steps have hardware preconditions: Run 3 needs two
sockets, Runs 4-6 need SMT contexts.  The generator must skip what the
machine cannot express and still produce usable descriptions.
"""

import pytest

from repro.core.machine_desc import generate_machine_description
from repro.core.placement import enumerate_canonical
from repro.core.predictor import PandiaPredictor
from repro.core.workload_desc import WorkloadDescriptionGenerator
from repro.hardware import machines
from repro.hardware.topology import MachineTopology
from repro.sim.noise import NO_NOISE
from repro.workloads.spec import WorkloadSpec


def make_machine(n_sockets, cores, threads, name):
    base = machines.get("TESTBOX")
    return base.with_topology(
        MachineTopology(n_sockets, cores, threads), name
    )


@pytest.fixture(scope="module")
def workload():
    return WorkloadSpec(
        name="degenerate-unit", work_ginstr=60.0, cpi=0.5, l1_bpi=6.0,
        l2_bpi=2.0, l3_bpi=1.0, dram_bpi=1.5, working_set_mib=8.0,
        parallel_fraction=0.97, load_balance=0.4, burst_duty=0.85,
        comm_fraction=0.004,
    )


class TestSingleSocket:
    @pytest.fixture(scope="class")
    def machine(self):
        return make_machine(1, 8, 2, "UNISOCKET")

    def test_machine_description_has_no_interconnect(self, machine):
        md = generate_machine_description(machine, noise=NO_NOISE)
        assert md.interconnect_bw == 0.0
        assert md.dram_bw_per_node > 0

    def test_profiling_skips_run3(self, machine, workload):
        md = generate_machine_description(machine, noise=NO_NOISE)
        wd = WorkloadDescriptionGenerator(machine, md, noise=NO_NOISE).generate(workload)
        labels = [r.label for r in wd.runs]
        assert "run3" not in labels
        assert wd.inter_socket_overhead == 0.0
        assert wd.parallel_fraction == pytest.approx(0.97, abs=0.03)

    def test_predictions_work(self, machine, workload):
        md = generate_machine_description(machine, noise=NO_NOISE)
        wd = WorkloadDescriptionGenerator(machine, md, noise=NO_NOISE).generate(workload)
        predictor = PandiaPredictor(md)
        for placement in enumerate_canonical(machine.topology, max_threads=8):
            prediction = predictor.predict(wd, placement)
            assert prediction.speedup > 0
            assert not any(k[0] == "link" for k in prediction.resource_loads)


class TestNoSmt:
    @pytest.fixture(scope="class")
    def machine(self):
        return make_machine(2, 4, 1, "NOSMT")

    def test_profiling_skips_smt_runs(self, machine, workload):
        md = generate_machine_description(machine, noise=NO_NOISE)
        wd = WorkloadDescriptionGenerator(machine, md, noise=NO_NOISE).generate(workload)
        labels = [r.label for r in wd.runs]
        assert "run4" not in labels and "run6" not in labels
        assert wd.burstiness == 0.0
        assert wd.load_balance == 0.5  # unidentifiable -> neutral default

    def test_smt_rate_equals_core_rate(self, machine):
        md = generate_machine_description(machine, noise=NO_NOISE)
        assert md.core_rate_smt == md.core_rate

    def test_canonical_placements_have_no_dual_cores(self, machine):
        for placement in enumerate_canonical(machine.topology):
            assert all(c == 1 for c in placement.threads_per_core().values())

    def test_end_to_end_prediction_accuracy(self, machine, workload):
        from repro.sim.run import run_workload

        md = generate_machine_description(machine, noise=NO_NOISE)
        wd = WorkloadDescriptionGenerator(machine, md, noise=NO_NOISE).generate(workload)
        predictor = PandiaPredictor(md)
        placement = enumerate_canonical(machine.topology, max_threads=6)[-1]
        predicted = predictor.predict(wd, placement).predicted_time_s
        measured = run_workload(
            machine, workload, placement.hw_thread_ids, noise=NO_NOISE
        ).elapsed_s
        assert predicted == pytest.approx(measured, rel=0.35)


class TestTinyMachine:
    def test_single_core_machine_runs_the_pipeline(self, workload):
        machine = make_machine(1, 1, 2, "UNICORE")
        md = generate_machine_description(machine, noise=NO_NOISE)
        wd = WorkloadDescriptionGenerator(machine, md, noise=NO_NOISE).generate(workload)
        # A single-core socket cannot express Run 2's contention-free
        # placement: the model stops at step 1 with neutral defaults.
        assert wd.t1 > 0
        assert [r.label for r in wd.runs] == ["run1"]
        assert wd.parallel_fraction == 1.0
        predictor = PandiaPredictor(md)
        placements = enumerate_canonical(machine.topology)
        for placement in placements:
            assert predictor.predict(wd, placement).speedup > 0
