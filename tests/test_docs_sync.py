"""Meta-tests keeping documentation and code in sync."""

from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


class TestExperimentIdsDocumented:
    def test_every_experiment_appears_in_readme(self):
        from repro.experiments.run_all import REGISTRY

        readme = (REPO / "README.md").read_text()
        for experiment_id in REGISTRY:
            assert f"`{experiment_id}`" in readme, (
                f"experiment {experiment_id!r} missing from README.md"
            )

    def test_reproduce_doc_lists_scales(self):
        text = (REPO / "docs" / "reproduce.md").read_text()
        for scale in ("quick", "default", "full"):
            assert scale in text


class TestCliDocumented:
    def test_readme_lists_cli_commands(self):
        from repro.cli import build_parser

        readme = (REPO / "README.md").read_text()
        parser = build_parser()
        subparsers = next(
            a for a in parser._actions if a.__class__.__name__ == "_SubParsersAction"
        )
        core_commands = {"describe-machine", "predict", "optimize", "experiment"}
        for command in core_commands:
            assert command in subparsers.choices
            assert command in readme, f"CLI command {command!r} missing from README"


class TestWorkloadsDocumented:
    def test_every_workload_appears_in_workloads_doc(self):
        from repro.workloads import catalog

        text = (REPO / "docs" / "workloads.md").read_text()
        for name in catalog.all_names():
            assert name in text, f"workload {name!r} missing from docs/workloads.md"


class TestDesignInventory:
    def test_design_lists_every_figure(self):
        design = (REPO / "DESIGN.md").read_text()
        for artifact in ("Figure 1", "Figure 10", "Figure 11", "Figure 12",
                         "Figure 13", "Figure 14"):
            assert artifact in design

    def test_experiments_md_covers_every_artifact(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for token in ("Figure 1", "Figure 10", "Figure 11", "Figure 12",
                      "Figure 13", "Figure 14", "sweep", "Worked example"):
            assert token in text


class TestObservabilityDocumented:
    """docs/observability.md tracks what the instrumentation emits."""

    SPANS = (
        "predictor.predict",
        "predictor.predict_batch",
        "predictor.iteration",
        "search.evaluate",
        "search.cache",
        "search.predict",
        "search.chunk",
        "search.strategy",
        "sim.simulate",
        "sim.fixed_point",
        "rack.schedule",
        "rack.refine",
    )
    HISTOGRAMS = (
        "predictor.iterations",
        "predictor.residual",
        "predictor.batch.alive_rows",
        "search.cache.lookup_us",
        "sim.outer_iterations",
    )

    def test_every_emitted_span_name_is_documented(self):
        text = (REPO / "docs" / "observability.md").read_text()
        for name in self.SPANS + self.HISTOGRAMS:
            assert name in text, f"{name!r} missing from docs/observability.md"

    def test_enabling_paths_are_documented(self):
        text = (REPO / "docs" / "observability.md").read_text()
        for token in ("REPRO_TRACE", "--trace", "--trace-out", "--metrics",
                      "obs.enable()"):
            assert token in text

    def test_cli_exposes_the_documented_flags(self):
        from repro.cli import build_parser

        parser = build_parser()
        subparsers = next(
            a for a in parser._actions if a.__class__.__name__ == "_SubParsersAction"
        )
        for command in ("optimize", "experiment"):
            option_strings = {
                opt
                for action in subparsers.choices[command]._actions
                for opt in action.option_strings
            }
            for flag in ("--trace", "--trace-out", "--metrics"):
                assert flag in option_strings, (
                    f"{flag} missing from `pandia {command}`"
                )

    def test_api_and_model_docs_cross_link(self):
        for doc in ("api.md", "model.md"):
            text = (REPO / "docs" / doc).read_text()
            assert "observability.md" in text, (
                f"docs/{doc} does not link docs/observability.md"
            )

    def test_ci_validates_and_uploads_the_trace(self):
        ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
        assert "--trace-out trace.json" in ci
        assert "validate_chrome_trace_file" in ci
        assert "path: trace.json" in ci


class TestObsV2Documented:
    """docs track the v2 observability surfaces: time series,
    flamegraphs, the ops dashboard and the bench sentinel."""

    DOC_TOKENS = (
        "timeseries",
        "TimeSeriesRecorder",
        "prometheus",
        "flamegraph",
        "percentile",
        "sample_at",
        "pandia profile",
        "pandia dashboard",
        "pandia bench check",
        "--dashboard-out",
        "--sample-window",
        "BENCH_HISTORY.jsonl",
    )

    def test_observability_doc_covers_the_v2_surface(self):
        text = (REPO / "docs" / "observability.md").read_text()
        for token in self.DOC_TOKENS:
            assert token.lower() in text.lower(), (
                f"{token!r} missing from docs/observability.md"
            )

    def test_api_doc_covers_the_surface(self):
        text = (REPO / "docs" / "api.md").read_text()
        for token in ("TimeSeriesRecorder", "prometheus_exposition",
                      "write_dashboard", "flamegraph_svg", "percentile",
                      "pandia dashboard", "pandia bench check",
                      "BENCH_HISTORY.jsonl", "--dashboard-out",
                      "--sample-window"):
            assert token in text, f"{token!r} missing from docs/api.md"

    def test_readme_mentions_the_surfaces(self):
        readme = (REPO / "README.md").read_text()
        for token in ("pandia dashboard", "pandia bench check",
                      "pandia profile"):
            assert token in readme, f"{token!r} missing from README.md"

    def test_cli_exposes_the_documented_commands_and_flags(self):
        from repro.cli import build_parser

        parser = build_parser()
        subparsers = next(
            a for a in parser._actions if a.__class__.__name__ == "_SubParsersAction"
        )
        for command in ("profile", "dashboard", "bench"):
            assert command in subparsers.choices, (
                f"`pandia {command}` missing from the CLI"
            )
        for command, flags in (
            ("dashboard", ("--out", "--sample-window", "--interval")),
            ("online", ("--dashboard-out", "--sample-window")),
        ):
            option_strings = {
                opt
                for action in subparsers.choices[command]._actions
                for opt in action.option_strings
            }
            for flag in flags:
                assert flag in option_strings, (
                    f"{flag} missing from `pandia {command}`"
                )

    def test_ci_gates_the_bench_sentinel_and_renders_a_dashboard(self):
        ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
        assert "bench check" in ci
        assert "dashboard" in ci
        assert "path: dashboard.html" in ci

    def test_stale_artifacts_are_ignored_not_committed(self):
        gitignore = (REPO / ".gitignore").read_text()
        for pattern in ("report_default.html", "results_default.txt",
                        "dashboard.html"):
            assert pattern in gitignore, f"{pattern!r} missing from .gitignore"


class TestOnlineDocumented:
    """docs/online.md tracks the online scheduling service."""

    SPANS = (
        "online.run",
        "online.admit",
        "online.departure",
        "online.migrate",
    )
    HISTOGRAMS = (
        "online.decision_us",
        "online.queue_depth",
        "online.slowdown",
    )

    def test_emitted_names_are_documented(self):
        online = (REPO / "docs" / "online.md").read_text()
        observability = (REPO / "docs" / "observability.md").read_text()
        for name in self.SPANS + self.HISTOGRAMS:
            assert name in online, f"{name!r} missing from docs/online.md"
            assert name in observability, (
                f"{name!r} missing from docs/observability.md"
            )

    def test_every_policy_is_documented(self):
        from repro.online import policy_names

        text = (REPO / "docs" / "online.md").read_text()
        for name in policy_names():
            assert f"`{name}`" in text, (
                f"policy {name!r} missing from docs/online.md"
            )

    def test_api_and_model_docs_cross_link(self):
        for doc in ("api.md", "model.md"):
            text = (REPO / "docs" / doc).read_text()
            assert "online.md" in text, (
                f"docs/{doc} does not link docs/online.md"
            )

    def test_readme_mentions_the_subsystem(self):
        readme = (REPO / "README.md").read_text()
        assert "online/" in readme
        assert "pandia online" in readme

    def test_cli_exposes_the_documented_flags(self):
        from repro.cli import build_parser

        parser = build_parser()
        subparsers = next(
            a for a in parser._actions if a.__class__.__name__ == "_SubParsersAction"
        )
        option_strings = {
            opt
            for action in subparsers.choices["online"]._actions
            for opt in action.option_strings
        }
        for flag in ("--jobs", "--rate", "--pattern", "--policy", "--seed",
                     "--migrate", "--hysteresis", "--json", "--trace",
                     "--trace-out", "--metrics"):
            assert flag in option_strings, f"{flag} missing from `pandia online`"

    def test_ci_runs_and_uploads_the_online_bench(self):
        ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
        assert "bench_rack_online.py --quick" in ci
        assert "BENCH_rack_online.json" in ci

class TestWarmStartDocumented:
    """docs track the warm-start machinery and the prediction store."""

    API_TOKENS = (
        "PredictionStore",
        "SeedState",
        "seed_state()",
        "warm_start",
        "final_f_norm",
        "machine_digest",
        "fingerprint_digest",
    )
    MODEL_TOKENS = (
        "Warm-start & delta prediction",
        "slowdown cap",
        "Aitken",
        "WARM_MIN_SEED_ITERATIONS",
    )

    def test_api_doc_covers_the_surface(self):
        text = (REPO / "docs" / "api.md").read_text()
        for token in self.API_TOKENS:
            assert token in text, f"{token!r} missing from docs/api.md"

    def test_model_doc_explains_the_protocol(self):
        text = (REPO / "docs" / "model.md").read_text()
        for token in self.MODEL_TOKENS:
            assert token in text, f"{token!r} missing from docs/model.md"

    def test_readme_cross_links(self):
        readme = (REPO / "README.md").read_text()
        assert "--warm-start" in readme
        assert "--store" in readme

    def test_cli_exposes_the_documented_flags(self):
        from repro.cli import build_parser

        parser = build_parser()
        subparsers = next(
            a for a in parser._actions if a.__class__.__name__ == "_SubParsersAction"
        )
        for command, flags in (
            ("optimize", ("--warm-start", "--store")),
            ("online", ("--store",)),
        ):
            option_strings = {
                opt
                for action in subparsers.choices[command]._actions
                for opt in action.option_strings
            }
            for flag in flags:
                assert flag in option_strings, (
                    f"{flag} missing from `pandia {command}`"
                )

    def test_stats_surface_the_telemetry(self):
        # The documented SearchStats warm counters must exist: a rename
        # breaks both the docs and anyone reading summary() output.
        from repro.search.stats import SearchStats

        stats = SearchStats()
        for field in ("store_hits", "warm_seeded", "fixed_point_iterations",
                      "warm_rate"):
            assert hasattr(stats, field)
        text = (REPO / "docs" / "api.md").read_text()
        for field in ("store_hits", "warm_seeded", "fixed_point_iterations"):
            assert field in text, f"{field!r} missing from docs/api.md"

    def test_ci_asserts_the_warm_bench(self):
        ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
        assert "--assert-warm-savings" in ci


class TestLintDocumented:
    """docs/lint.md tracks the invariant checker."""

    def test_every_registered_rule_is_catalogued(self):
        from repro.lint import rule_ids

        text = (REPO / "docs" / "lint.md").read_text()
        for rule_id in rule_ids():
            assert f"`{rule_id}`" in text, (
                f"rule {rule_id!r} missing from docs/lint.md"
            )

    def test_suppression_syntax_is_documented(self):
        text = (REPO / "docs" / "lint.md").read_text()
        for token in ("lint-ok[", "--write-baseline", "lint-baseline.json",
                      "--select", "--format json"):
            assert token in text, f"{token!r} missing from docs/lint.md"

    def test_readme_and_api_cross_link(self):
        readme = (REPO / "README.md").read_text()
        assert "pandia lint" in readme
        assert "docs/lint.md" in readme
        api = (REPO / "docs" / "api.md").read_text()
        assert "lint.md" in api
        assert "run_lint" in api

    def test_telemetry_names_are_documented(self):
        text = (REPO / "docs" / "lint.md").read_text()
        for name in ("lint.run", "lint.files", "lint.findings."):
            assert name in text, f"{name!r} missing from docs/lint.md"

    def test_cli_exposes_the_documented_flags(self):
        from repro.cli import build_parser

        parser = build_parser()
        subparsers = next(
            a for a in parser._actions if a.__class__.__name__ == "_SubParsersAction"
        )
        assert "lint" in subparsers.choices
        option_strings = {
            opt
            for action in subparsers.choices["lint"]._actions
            for opt in action.option_strings
        }
        for flag in ("--format", "--select", "--baseline", "--no-baseline",
                     "--write-baseline", "--show-baselined"):
            assert flag in option_strings, f"{flag} missing from `pandia lint`"

    def test_ci_runs_the_linter_and_uploads_the_report(self):
        ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
        assert "pandia lint" in ci or "repro.cli lint" in ci
        assert "lint-report.json" in ci

    def test_makefile_has_a_lint_target(self):
        makefile = (REPO / "Makefile").read_text()
        assert "\nlint:" in makefile


class TestSurrogateDocumented:
    """docs track the surrogate pre-filter end to end."""

    API_TOKENS = (
        "SurrogateStrategy",
        "train_surrogate",
        "save_surrogate",
        "load_surrogate",
        "PlacementFeaturizer",
        "FEATURE_NAMES",
        "fallback_reason",
        "pandia surrogate train",
        "--surrogate-model",
        "BENCH_surrogate.json",
    )
    MODEL_TOKENS = (
        "Surrogate pre-filter",
        "top-k",
        "canonical key",
        "min_confidence",
        "stable_rounds",
        "log_amdahl_rel",
    )

    def test_api_doc_covers_the_surface(self):
        text = (REPO / "docs" / "api.md").read_text()
        for token in self.API_TOKENS:
            assert token in text, f"{token!r} missing from docs/api.md"

    def test_model_doc_explains_the_protocol(self):
        text = (REPO / "docs" / "model.md").read_text()
        for token in self.MODEL_TOKENS:
            assert token in text, f"{token!r} missing from docs/model.md"

    def test_readme_cross_links(self):
        readme = (REPO / "README.md").read_text()
        assert "pandia surrogate train" in readme
        assert "--surrogate-model" in readme
        assert "surrogate/" in readme

    def test_telemetry_names_are_documented(self):
        text = (REPO / "docs" / "observability.md").read_text()
        for name in ("search.surrogate", "search.surrogate.score_us"):
            assert name in text, f"{name!r} missing from docs/observability.md"

    def test_cli_exposes_the_documented_flags(self):
        from repro.cli import build_parser

        parser = build_parser()
        subparsers = next(
            a for a in parser._actions if a.__class__.__name__ == "_SubParsersAction"
        )
        assert "surrogate" in subparsers.choices
        for command in ("optimize", "online"):
            option_strings = {
                opt
                for action in subparsers.choices[command]._actions
                for opt in action.option_strings
            }
            assert "--surrogate-model" in option_strings, (
                f"--surrogate-model missing from `pandia {command}`"
            )
        strategy_action = next(
            a
            for a in subparsers.choices["optimize"]._actions
            if "--strategy" in a.option_strings
        )
        assert "surrogate" in strategy_action.choices

    def test_stats_surface_the_telemetry(self):
        from repro.search.stats import SearchStats

        stats = SearchStats()
        for field in ("surrogate_scored", "surrogate_verified",
                      "surrogate_fallbacks", "surrogate_regret",
                      "surrogate_verify_rate", "note_surrogate_regret"):
            assert hasattr(stats, field)
        text = (REPO / "docs" / "api.md").read_text()
        for field in ("surrogate_scored", "surrogate_verified",
                      "surrogate_fallbacks"):
            assert field in text, f"{field!r} missing from docs/api.md"

    def test_ci_runs_and_uploads_the_surrogate_bench(self):
        ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
        assert "bench_search.py --surrogate" in ci
        assert "BENCH_surrogate.json" in ci
