"""Round-trip, corruption, and atomicity coverage for PredictionStore."""

from __future__ import annotations

import json

import pytest

from repro.core.coscheduling import CoSchedulePredictor
from repro.core.machine_desc import generate_machine_description
from repro.core.predictor import PandiaPredictor
from repro.core.sweep import sweep_placements
from repro.core.workload_desc import WorkloadDescriptionGenerator
from repro.errors import ModelError, ReproError
from repro.hardware import machines
from repro.io import PredictionStore, fingerprint_digest, machine_digest
from repro.io.prediction_store import STORE_VERSION
from repro.search.canonical import canonical_key, workload_fingerprint
from repro.sim.noise import NO_NOISE
from repro.workloads import catalog


@pytest.fixture(scope="module")
def env():
    spec = machines.get("TESTBOX")
    md = generate_machine_description(spec, noise=NO_NOISE)
    gen = WorkloadDescriptionGenerator(spec, md, noise=NO_NOISE)
    workload = gen.generate(catalog.get("MD"))
    predictor = PandiaPredictor(md)
    placement = sweep_placements(spec.topology)[-1]
    prediction = predictor.predict(workload, placement)
    return spec, md, workload, predictor, placement, prediction


def _ids(md, workload):
    return machine_digest(md), fingerprint_digest(workload_fingerprint(workload))


class TestSoloRoundTrip:
    def test_round_trip_in_memory(self, env, tmp_path):
        spec, md, workload, predictor, placement, prediction = env
        m_digest, w_digest = _ids(md, workload)
        key = canonical_key(placement)
        store = PredictionStore(tmp_path)
        assert store.get_prediction(m_digest, w_digest, key, placement) is None
        store.put_prediction(m_digest, w_digest, key, prediction)
        got = store.get_prediction(m_digest, w_digest, key, placement)
        assert got is not None
        assert got.predicted_time_s == prediction.predicted_time_s
        assert got.slowdowns == prediction.slowdowns
        assert got.utilisations == prediction.utilisations
        assert got.final_f_norm == prediction.final_f_norm
        assert got.iterations == prediction.iterations
        assert got.converged is prediction.converged
        assert got.resource_loads == prediction.resource_loads
        assert got.resource_capacities == prediction.resource_capacities

    def test_round_trip_across_sessions(self, env, tmp_path):
        spec, md, workload, predictor, placement, prediction = env
        m_digest, w_digest = _ids(md, workload)
        key = canonical_key(placement)
        with PredictionStore(tmp_path) as store:
            store.put_prediction(m_digest, w_digest, key, prediction)
        # A fresh instance over the same root sees the flushed record,
        # including the seedable final_f_norm.
        reread = PredictionStore(tmp_path)
        got = reread.get_prediction(m_digest, w_digest, key, placement)
        assert got is not None
        assert got.predicted_time_s == prediction.predicted_time_s
        assert got.final_f_norm == prediction.final_f_norm
        assert got.seed_state() == prediction.seed_state()

    def test_rebuilds_onto_requested_placement(self, env, tmp_path):
        spec, md, workload, predictor, placement, prediction = env
        m_digest, w_digest = _ids(md, workload)
        key = canonical_key(placement)
        store = PredictionStore(tmp_path)
        store.put_prediction(m_digest, w_digest, key, prediction)
        # Any concrete placement may be passed at lookup; the record
        # answers for the whole symmetry class.
        got = store.get_prediction(m_digest, w_digest, key, placement)
        assert got.placement == placement
        assert got.trace == []


class TestJointRoundTrip:
    def test_round_trip(self, env, tmp_path):
        spec, md, workload, predictor, placement, prediction = env
        sweeps = sweep_placements(spec.topology)
        half = [p for p in sweeps if 1 < p.n_threads <= spec.topology.n_cores // 2]
        p1 = half[0]
        used = set(p1.hw_thread_ids)
        all_tids = [
            t
            for t in range(spec.topology.n_hw_threads)
            if t not in used
        ]
        from repro.core.coscheduling import CoScheduledWorkload
        from repro.core.placement import Placement

        p2 = Placement(spec.topology, tuple(all_tids[: p1.n_threads]))
        gen = WorkloadDescriptionGenerator(spec, md, noise=NO_NOISE)
        w2 = gen.generate(catalog.get("CG"))
        joint = CoSchedulePredictor(md)
        jobs = [
            CoScheduledWorkload(workload, p1),
            CoScheduledWorkload(w2, p2),
        ]
        pred = joint.predict(jobs)

        m_digest = machine_digest(md)
        digests = [
            fingerprint_digest(workload_fingerprint(j.description)[1:])
            for j in jobs
        ]
        order = sorted(
            range(len(jobs)),
            key=lambda i: (digests[i], jobs[i].placement.hw_thread_ids),
        )
        key = tuple(
            (digests[i], tuple(jobs[i].placement.hw_thread_ids)) for i in order
        )

        with PredictionStore(tmp_path) as store:
            assert store.get_joint(m_digest, key) is None
            store.put_joint(m_digest, key, pred, order)
        got = PredictionStore(tmp_path).get_joint(m_digest, key)
        assert got is not None
        assert got.iterations == pred.iterations
        assert got.converged is pred.converged
        # Outcomes come back in key order; match them up by name.
        by_name = {o.workload_name: o for o in got.outcomes}
        for original in pred.outcomes:
            stored = by_name[original.workload_name]
            assert stored.predicted_time_s == original.predicted_time_s
            assert stored.slowdowns == original.slowdowns


class TestCorruption:
    def _seeded_store(self, env, tmp_path):
        spec, md, workload, predictor, placement, prediction = env
        m_digest, w_digest = _ids(md, workload)
        key = canonical_key(placement)
        with PredictionStore(tmp_path) as store:
            store.put_prediction(m_digest, w_digest, key, prediction)
        return m_digest, w_digest, key, store.shard_path(m_digest, w_digest)

    @pytest.mark.parametrize(
        "payload",
        [
            "{ not json",
            '{"version": 1, "solo"',  # truncated mid-stream
            '[1, 2, 3]',  # wrong root type
            '{"version": 1}',  # right version, missing namespaces
        ],
    )
    def test_corrupt_shard_names_path(self, env, tmp_path, payload):
        m_digest, w_digest, key, path = self._seeded_store(env, tmp_path)
        path.write_text(payload)
        store = PredictionStore(tmp_path)
        with pytest.raises(ModelError) as excinfo:
            store.get_prediction(m_digest, w_digest, key, env[4])
        assert str(path) in str(excinfo.value)
        assert isinstance(excinfo.value, ReproError)

    def test_version_mismatch_is_stale_not_corrupt(self, env, tmp_path):
        m_digest, w_digest, key, path = self._seeded_store(env, tmp_path)
        data = json.loads(path.read_text())
        data["version"] = STORE_VERSION + 1
        path.write_text(json.dumps(data))
        store = PredictionStore(tmp_path)
        # An old/new schema is a cache miss for the whole shard.
        assert store.get_prediction(m_digest, w_digest, key, env[4]) is None


class TestFlush:
    def test_flush_is_atomic_no_tmp_left_behind(self, env, tmp_path):
        spec, md, workload, predictor, placement, prediction = env
        m_digest, w_digest = _ids(md, workload)
        store = PredictionStore(tmp_path)
        store.put_prediction(m_digest, w_digest, canonical_key(placement), prediction)
        store.flush()
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []
        assert store.shard_path(m_digest, w_digest).exists()

    def test_flush_without_writes_is_noop(self, tmp_path):
        store = PredictionStore(tmp_path / "empty")
        store.flush()
        assert not (tmp_path / "empty").exists()

    def test_reflush_only_writes_dirty_shards(self, env, tmp_path):
        spec, md, workload, predictor, placement, prediction = env
        m_digest, w_digest = _ids(md, workload)
        store = PredictionStore(tmp_path)
        store.put_prediction(m_digest, w_digest, canonical_key(placement), prediction)
        store.flush()
        path = store.shard_path(m_digest, w_digest)
        before = path.stat().st_mtime_ns
        store.flush()  # nothing dirty: file untouched
        assert path.stat().st_mtime_ns == before


class TestDigests:
    def test_machine_digest_tracks_description(self, env):
        spec, md, workload, *_ = env
        assert machine_digest(md) == machine_digest(md)
        other_spec = machines.get("FIG3")
        other = generate_machine_description(other_spec, noise=NO_NOISE)
        assert machine_digest(md) != machine_digest(other)

    def test_fingerprint_digest_is_stable(self, env):
        _, _, workload, *_ = env
        fp = workload_fingerprint(workload)
        assert fingerprint_digest(fp) == fingerprint_digest(fp)
        assert fingerprint_digest(fp) != fingerprint_digest(fp[1:])
