"""Tests for the on-disk description store."""

import pytest

from repro.core.description import DemandVector, WorkloadDescription
from repro.errors import ModelError
from repro.io.store import DescriptionStore


@pytest.fixture
def store(tmp_path):
    return DescriptionStore(tmp_path)


def make_workload(name="stored", machine="TESTBOX"):
    return WorkloadDescription(
        name=name,
        machine_name=machine,
        t1=10.0,
        demands=DemandVector(inst_rate=4.0, dram_bw=2.0),
        parallel_fraction=0.95,
    )


class TestMachineStore:
    def test_save_and_load(self, store, testbox_md):
        path = store.save_machine(testbox_md)
        assert path.exists()
        assert store.load_machine("TESTBOX") == testbox_md

    def test_load_missing_raises(self, store):
        with pytest.raises(ModelError, match="no stored machine"):
            store.load_machine("GHOST")

    def test_get_or_measure_measures_once(self, store, testbox_md):
        calls = []

        def measure():
            calls.append(1)
            return testbox_md

        first = store.get_or_measure("TESTBOX", measure)
        second = store.get_or_measure("TESTBOX", measure)
        assert first == second == testbox_md
        assert len(calls) == 1

    def test_get_or_measure_rejects_wrong_machine(self, store, testbox_md):
        with pytest.raises(ModelError, match="expected"):
            store.get_or_measure("OTHER", lambda: testbox_md)

    def test_stored_machines_listing(self, store, testbox_md):
        assert store.stored_machines() == []
        store.save_machine(testbox_md)
        assert store.stored_machines() == ["TESTBOX"]


class TestWorkloadStore:
    def test_save_and_load(self, store):
        wd = make_workload()
        store.save_workload(wd)
        assert store.load_workload("TESTBOX", "stored") == wd

    def test_descriptions_keyed_by_machine(self, store):
        a = make_workload(machine="TESTBOX")
        b = make_workload(machine="X3-2")
        store.save_workload(a)
        store.save_workload(b)
        assert store.load_workload("TESTBOX", "stored").machine_name == "TESTBOX"
        assert store.load_workload("X3-2", "stored").machine_name == "X3-2"

    def test_get_or_profile_profiles_once(self, store):
        calls = []

        def profile():
            calls.append(1)
            return make_workload()

        store.get_or_profile("TESTBOX", "stored", profile)
        store.get_or_profile("TESTBOX", "stored", profile)
        assert len(calls) == 1

    def test_get_or_profile_rejects_mismatch(self, store):
        with pytest.raises(ModelError, match="expected"):
            store.get_or_profile("TESTBOX", "other-name", make_workload)

    def test_stored_workloads_listing(self, store):
        assert store.stored_workloads("TESTBOX") == []
        store.save_workload(make_workload(name="a"))
        store.save_workload(make_workload(name="b"))
        assert store.stored_workloads("TESTBOX") == ["a", "b"]

    def test_weird_names_are_sanitised(self, store):
        wd = make_workload(name="Sort-Join")
        path = store.save_workload(wd)
        assert path.name == "Sort-Join.json"
        odd = make_workload(name="a/b c")
        odd_path = store.save_workload(odd)
        assert "/" not in odd_path.name
        assert store.load_workload("TESTBOX", "a/b c").name == "a/b c"


class TestCorruptDescriptions:
    """Corrupt or truncated description files raise a ModelError that
    names the offending path — never a bare JSON decode error."""

    @pytest.mark.parametrize("payload", ["{ not json", '{"half": ', "[]"])
    def test_corrupt_machine_names_path(self, store, testbox_md, payload):
        path = store.save_machine(testbox_md)
        path.write_text(payload)
        with pytest.raises(ModelError, match="corrupt description at") as excinfo:
            store.load_machine("TESTBOX")
        assert str(path) in str(excinfo.value)

    @pytest.mark.parametrize("payload", ["{ not json", '{"half": ', "[]"])
    def test_corrupt_workload_names_path(self, store, payload):
        path = store.save_workload(make_workload())
        path.write_text(payload)
        with pytest.raises(ModelError, match="corrupt description at") as excinfo:
            store.load_workload("TESTBOX", "stored")
        assert str(path) in str(excinfo.value)

    def test_get_or_measure_does_not_mask_corruption(self, store, testbox_md):
        path = store.save_machine(testbox_md)
        path.write_text("{ truncated")
        # A corrupt file must NOT silently fall through to re-measuring:
        # that would hide data loss behind fresh (possibly different) data.
        with pytest.raises(ModelError, match=str(path)):
            store.get_or_measure("TESTBOX", lambda: testbox_md)

    def test_get_or_profile_does_not_mask_corruption(self, store):
        wd = make_workload()
        path = store.save_workload(wd)
        path.write_text("{ truncated")
        with pytest.raises(ModelError, match=str(path)):
            store.get_or_profile("TESTBOX", "stored", lambda: wd)
