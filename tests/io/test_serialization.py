"""Tests for JSON serialisation of descriptions."""

import json

import pytest

from repro.core.description import DemandVector, RunRecord, WorkloadDescription
from repro.errors import ModelError
from repro.io.serialization import (
    description_from_json,
    description_to_json,
    machine_description_from_json,
    machine_description_to_json,
)


@pytest.fixture
def workload_description():
    return WorkloadDescription(
        name="roundtrip",
        machine_name="TESTBOX",
        t1=12.5,
        demands=DemandVector(
            inst_rate=4.5, cache_bw={"L1": 30.0, "L3": 5.0}, dram_bw=7.0
        ),
        parallel_fraction=0.97,
        inter_socket_overhead=0.012,
        load_balance=0.4,
        burstiness=0.22,
        runs=(
            RunRecord("run1", 1, 12.5, 1.0, 1.0, 1.0),
            RunRecord("run2", 4, 3.5, 0.28, 1.0, 0.28),
        ),
    )


class TestMachineDescriptionRoundTrip:
    def test_round_trip_is_identical(self, testbox_md):
        text = machine_description_to_json(testbox_md)
        loaded = machine_description_from_json(text)
        assert loaded == testbox_md

    def test_output_is_stable(self, testbox_md):
        assert machine_description_to_json(testbox_md) == machine_description_to_json(
            testbox_md
        )

    def test_rejects_wrong_kind(self, workload_description):
        text = description_to_json(workload_description)
        with pytest.raises(ModelError, match="machine_description"):
            machine_description_from_json(text)

    def test_rejects_future_version(self, testbox_md):
        payload = json.loads(machine_description_to_json(testbox_md))
        payload["format_version"] = 999
        with pytest.raises(ModelError, match="format version"):
            machine_description_from_json(json.dumps(payload))

    def test_rejects_missing_field(self, testbox_md):
        payload = json.loads(machine_description_to_json(testbox_md))
        del payload["core_rate"]
        with pytest.raises(ModelError, match="missing field"):
            machine_description_from_json(json.dumps(payload))

    def test_rejects_garbage(self):
        with pytest.raises(ModelError, match="invalid JSON"):
            machine_description_from_json("not json {")


class TestWorkloadDescriptionRoundTrip:
    def test_round_trip_is_identical(self, workload_description):
        loaded = description_from_json(description_to_json(workload_description))
        assert loaded == workload_description

    def test_run_records_survive(self, workload_description):
        loaded = description_from_json(description_to_json(workload_description))
        assert len(loaded.runs) == 2
        assert loaded.profiling_cost_s == workload_description.profiling_cost_s

    def test_validation_applies_on_load(self, workload_description):
        payload = json.loads(description_to_json(workload_description))
        payload["parallel_fraction"] = 1.7
        with pytest.raises(ModelError):
            description_from_json(json.dumps(payload))

    def test_loaded_description_predicts(self, testbox_md, workload_description):
        """A round-tripped description is directly usable."""
        from repro.core.placement import Placement
        from repro.core.predictor import PandiaPredictor

        loaded = description_from_json(description_to_json(workload_description))
        pred = PandiaPredictor(testbox_md).predict(
            loaded, Placement(testbox_md.topology, (0, 1))
        )
        assert pred.speedup > 0
