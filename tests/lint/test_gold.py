"""PD-GOLD fixtures: golden modules stay free of newer layers."""


class TestGoldenPurity:
    def test_surrogate_import_into_golden_predictor_is_flagged(self, lint_snippet):
        findings = lint_snippet(
            """
            import repro.surrogate
            """,
            rules=["PD-GOLD"],
            module="repro.core.predictor",
        )
        assert [f.rule_id for f in findings] == ["PD-GOLD"]
        assert findings[0].line == 2
        assert "repro.surrogate" in findings[0].message

    def test_lazy_function_level_import_is_still_flagged(self, lint_snippet):
        findings = lint_snippet(
            """
            def sneak():
                from repro.io import store
                return store
            """,
            rules=["PD-GOLD"],
            module="repro.core.optimizer",
        )
        assert [f.rule_id for f in findings] == ["PD-GOLD"]
        assert findings[0].line == 3

    def test_from_package_import_submodule_is_flagged(self, lint_snippet):
        findings = lint_snippet(
            """
            from repro import surrogate
            """,
            rules=["PD-GOLD"],
            module="repro.core.predictor",
        )
        assert [f.rule_id for f in findings] == ["PD-GOLD"]

    def test_relative_import_resolves_against_the_package(self, lint_snippet):
        # ``from ..io import store`` inside repro.core.* is repro.io.store.
        findings = lint_snippet(
            """
            from ..io import store
            """,
            rules=["PD-GOLD"],
            module="repro.core.predictor",
        )
        assert [f.rule_id for f in findings] == ["PD-GOLD"]

    def test_allowed_imports_pass_in_golden_modules(self, lint_snippet):
        findings = lint_snippet(
            """
            import math
            import numpy as np
            from repro.errors import PredictionError
            from repro.search.engine import SearchEngine
            from repro.units import near_zero
            """,
            rules=["PD-GOLD"],
            module="repro.core.optimizer",
        )
        assert findings == []

    def test_non_golden_modules_may_import_anything(self, lint_snippet):
        findings = lint_snippet(
            """
            import repro.surrogate
            from repro.io import store
            """,
            rules=["PD-GOLD"],
            module="repro.search.strategies",
        )
        assert findings == []

    def test_pragma_suppresses_a_deliberate_exception(self, lint_snippet):
        findings = lint_snippet(
            """
            import repro.io  # pandia: lint-ok[PD-GOLD] typing-only import, no runtime use
            """,
            rules=["PD-GOLD"],
            module="repro.core.predictor",
        )
        assert findings == []
