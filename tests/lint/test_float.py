"""PD-FLOAT fixtures: no exact equality against float literals."""


def _ids(findings):
    return [f.rule_id for f in findings]


class TestFloatEquality:
    def test_eq_against_float_literal_is_flagged(self, lint_snippet):
        findings = lint_snippet(
            """
            def guard(capacity):
                if capacity == 0.0:
                    return None
                return 1.0 / capacity
            """,
            rules=["PD-FLOAT"],
        )
        assert _ids(findings) == ["PD-FLOAT"]
        assert findings[0].line == 3
        assert "near_zero" in findings[0].suggestion

    def test_noteq_and_negative_literals_are_flagged(self, lint_snippet):
        findings = lint_snippet(
            """
            def check(x, y):
                return x != 1.5 or -2.5 == y
            """,
            rules=["PD-FLOAT"],
        )
        assert _ids(findings) == ["PD-FLOAT", "PD-FLOAT"]

    def test_chained_comparison_checks_each_link(self, lint_snippet):
        findings = lint_snippet(
            """
            def check(a, b):
                return a < b == 0.5
            """,
            rules=["PD-FLOAT"],
        )
        assert _ids(findings) == ["PD-FLOAT"]

    def test_int_literals_and_ordering_pass(self, lint_snippet):
        findings = lint_snippet(
            """
            def check(n, x):
                return n == 0 or x < 0.5 or x >= 1.0
            """,
            rules=["PD-FLOAT"],
        )
        assert findings == []

    def test_tolerance_comparisons_pass(self, lint_snippet):
        findings = lint_snippet(
            """
            import math

            from repro.units import EPSILON, near_zero

            def check(x, y):
                return math.isclose(x, y) or near_zero(x) or abs(x - y) < EPSILON
            """,
            rules=["PD-FLOAT"],
        )
        assert findings == []

    def test_pragma_suppresses_a_sentinel_compare(self, lint_snippet):
        findings = lint_snippet(
            """
            def check(stamp):
                return stamp == -1.0  # pandia: lint-ok[PD-FLOAT] -1.0 is an exact sentinel, never computed
            """,
            rules=["PD-FLOAT"],
        )
        assert findings == []
