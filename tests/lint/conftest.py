"""Shared fixture: lint a source snippet as if it were a real module."""

from __future__ import annotations

import textwrap

import pytest

from repro.lint.engine import lint_file
from repro.lint.registry import select_rules


@pytest.fixture
def lint_snippet(tmp_path):
    """Write *code* to a temp module and return its findings.

    ``module="repro.core.predictor"`` materialises the package chain
    (``__init__.py`` files included) so rules keyed on module identity
    (PD-GOLD) see the right dotted name.  ``rules=None`` runs the full
    registry; otherwise a list of rule ids.
    """

    def run(code, rules=None, module="snippet"):
        parts = module.split(".")
        directory = tmp_path
        for package in parts[:-1]:
            directory = directory / package
            directory.mkdir(exist_ok=True)
            init = directory / "__init__.py"
            if not init.exists():
                init.write_text("")
        path = directory / f"{parts[-1]}.py"
        path.write_text(textwrap.dedent(code))
        active = select_rules(rules)
        return lint_file(str(path), active)

    return run
