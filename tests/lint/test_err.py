"""PD-ERR fixtures: repro errors name the entity that failed."""


def _ids(findings):
    return [f.rule_id for f in findings]


class TestErrorNaming:
    def test_constant_message_is_flagged(self, lint_snippet):
        findings = lint_snippet(
            """
            from repro.errors import ModelError

            def check(counts):
                if not counts:
                    raise ModelError("training counts are empty")
            """,
            rules=["PD-ERR"],
        )
        assert _ids(findings) == ["PD-ERR"]
        assert findings[0].line == 6
        assert findings[0].severity == "warning"

    def test_empty_raise_is_flagged(self, lint_snippet):
        findings = lint_snippet(
            """
            from repro.errors import PredictionError

            def check(ok):
                if not ok:
                    raise PredictionError()
            """,
            rules=["PD-ERR"],
        )
        assert _ids(findings) == ["PD-ERR"]
        assert "no message" in findings[0].message

    def test_constant_fstring_is_still_constant(self, lint_snippet):
        findings = lint_snippet(
            """
            from repro.errors import TopologyError

            def check(ok):
                if not ok:
                    raise TopologyError(f"socket layout is inconsistent")
            """,
            rules=["PD-ERR"],
        )
        assert _ids(findings) == ["PD-ERR"]

    def test_interpolated_message_passes(self, lint_snippet):
        findings = lint_snippet(
            """
            from repro.errors import ModelError

            def check(machine, counts):
                if not counts:
                    raise ModelError(
                        f"no training counts for machine {machine.name}"
                    )
            """,
            rules=["PD-ERR"],
        )
        assert findings == []

    def test_percent_and_format_messages_pass(self, lint_snippet):
        findings = lint_snippet(
            """
            from repro.errors import SimulationError, PlacementError

            def check(machine, thread):
                raise SimulationError("machine %s is overloaded" % machine)

            def check2(thread):
                raise PlacementError("thread {} unmapped".format(thread))
            """,
            rules=["PD-ERR"],
        )
        assert findings == []

    def test_non_repro_exceptions_are_out_of_scope(self, lint_snippet):
        findings = lint_snippet(
            """
            def check(values):
                if not values:
                    raise ValueError("empty sequence")
            """,
            rules=["PD-ERR"],
        )
        assert findings == []

    def test_reraise_without_call_passes(self, lint_snippet):
        findings = lint_snippet(
            """
            from repro.errors import ReproError

            def forward(exc):
                if isinstance(exc, ReproError):
                    raise exc
            """,
            rules=["PD-ERR"],
        )
        assert findings == []

    def test_pragma_suppresses_a_contextless_guard(self, lint_snippet):
        findings = lint_snippet(
            """
            from repro.errors import ReproError

            def check(ok):
                if not ok:
                    raise ReproError("internal invariant violated")  # pandia: lint-ok[PD-ERR] no entity exists here
            """,
            rules=["PD-ERR"],
        )
        assert findings == []
