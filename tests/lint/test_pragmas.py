"""Pragma parsing and the PD-PRAGMA hygiene rule."""

from repro.lint.pragmas import parse_pragmas


def _ids(findings):
    return [f.rule_id for f in findings]


class TestParsing:
    def test_single_rule_with_reason(self):
        pragmas = parse_pragmas(
            "x = 1  # pandia: lint-ok[PD-DET] sampling is intentionally wall-clock\n"
        )
        assert len(pragmas) == 1
        assert pragmas[0].line == 1
        assert pragmas[0].rule_ids == ("PD-DET",)
        assert pragmas[0].reason.startswith("sampling")

    def test_multiple_rules_share_one_pragma(self):
        pragmas = parse_pragmas(
            "y = 2  # pandia: lint-ok[PD-DET, PD-FLOAT] fixture constants\n"
        )
        assert pragmas[0].rule_ids == ("PD-DET", "PD-FLOAT")

    def test_docstrings_mentioning_the_syntax_are_not_pragmas(self):
        source = (
            '"""Write `# pandia: lint-ok[PD-DET] why` to suppress."""\n'
            "x = 1\n"
        )
        assert parse_pragmas(source) == []

    def test_plain_comments_are_not_pragmas(self):
        assert parse_pragmas("# nothing to see here\n") == []


class TestHygieneRule:
    def test_unknown_rule_id_is_flagged(self, lint_snippet):
        findings = lint_snippet(
            """
            x = 1  # pandia: lint-ok[PD-NOPE] misremembered the id
            """,
            rules=["PD-PRAGMA"],
        )
        assert _ids(findings) == ["PD-PRAGMA"]
        assert "PD-NOPE" in findings[0].message
        assert findings[0].line == 2

    def test_missing_reason_is_flagged(self, lint_snippet):
        findings = lint_snippet(
            """
            x = 1  # pandia: lint-ok[PD-FLOAT]
            """,
            rules=["PD-PRAGMA"],
        )
        assert _ids(findings) == ["PD-PRAGMA"]
        assert "reason" in findings[0].message

    def test_empty_rule_list_is_flagged(self, lint_snippet):
        findings = lint_snippet(
            """
            x = 1  # pandia: lint-ok[] suppress… what?
            """,
            rules=["PD-PRAGMA"],
        )
        assert _ids(findings) == ["PD-PRAGMA"]

    def test_well_formed_pragma_passes(self, lint_snippet):
        findings = lint_snippet(
            """
            x = 1  # pandia: lint-ok[PD-FLOAT] sentinel value, never computed
            """,
            rules=["PD-PRAGMA"],
        )
        assert findings == []
