"""PD-DET fixtures: global RNG, wall clock, set-order iteration."""


def _ids(findings):
    return [f.rule_id for f in findings]


class TestGlobalRng:
    def test_module_level_random_call_is_flagged(self, lint_snippet):
        findings = lint_snippet(
            """
            import random

            def jitter():
                return random.random()
            """,
            rules=["PD-DET"],
        )
        assert _ids(findings) == ["PD-DET"]
        assert findings[0].line == 5
        assert "process-global RNG" in findings[0].message

    def test_from_import_alias_is_resolved(self, lint_snippet):
        findings = lint_snippet(
            """
            from random import shuffle

            def scramble(items):
                shuffle(items)
            """,
            rules=["PD-DET"],
        )
        assert _ids(findings) == ["PD-DET"]

    def test_numpy_global_rng_is_flagged(self, lint_snippet):
        findings = lint_snippet(
            """
            import numpy as np

            def noise(n):
                return np.random.rand(n)
            """,
            rules=["PD-DET"],
        )
        assert _ids(findings) == ["PD-DET"]
        assert "numpy.random.rand" in findings[0].message

    def test_seeded_instances_pass(self, lint_snippet):
        findings = lint_snippet(
            """
            import random
            import numpy as np

            def draw(seed):
                rng = random.Random(seed)
                gen = np.random.default_rng(seed)
                return rng.random() + gen.random()
            """,
            rules=["PD-DET"],
        )
        assert findings == []

    def test_unseeded_constructor_is_flagged(self, lint_snippet):
        findings = lint_snippet(
            """
            import random

            def draw():
                return random.Random().random()
            """,
            rules=["PD-DET"],
        )
        assert _ids(findings) == ["PD-DET"]
        assert "without a seed" in findings[0].message


class TestWallClock:
    def test_time_time_is_flagged_with_location(self, lint_snippet):
        findings = lint_snippet(
            """
            import time

            def stamp():
                return time.time()
            """,
            rules=["PD-DET"],
        )
        assert _ids(findings) == ["PD-DET"]
        assert findings[0].line == 5
        assert "perf_counter" in findings[0].suggestion

    def test_perf_counter_passes(self, lint_snippet):
        findings = lint_snippet(
            """
            import time

            def interval():
                return time.perf_counter()
            """,
            rules=["PD-DET"],
        )
        assert findings == []


class TestSetIteration:
    def test_for_over_set_call_is_flagged(self, lint_snippet):
        findings = lint_snippet(
            """
            def keys(rows):
                out = []
                for key in set(rows):
                    out.append(key)
                return out
            """,
            rules=["PD-DET"],
        )
        assert _ids(findings) == ["PD-DET"]
        assert "PYTHONHASHSEED" in findings[0].message

    def test_list_over_set_literal_is_flagged(self, lint_snippet):
        findings = lint_snippet(
            """
            def pair(a, b):
                return list({a, b})
            """,
            rules=["PD-DET"],
        )
        assert _ids(findings) == ["PD-DET"]

    def test_sorted_and_reducers_pass(self, lint_snippet):
        findings = lint_snippet(
            """
            def summarise(rows):
                ordered = sorted(set(rows))
                total = sum(x for x in set(rows))
                top = max(set(rows))
                return ordered, total, top
            """,
            rules=["PD-DET"],
        )
        assert findings == []

    def test_comprehension_over_set_is_flagged(self, lint_snippet):
        findings = lint_snippet(
            """
            def label(rows):
                return [str(x) for x in set(rows)]
            """,
            rules=["PD-DET"],
        )
        assert _ids(findings) == ["PD-DET"]


class TestPragma:
    def test_pragma_suppresses_on_the_finding_line(self, lint_snippet):
        findings = lint_snippet(
            """
            import time

            def stamp():
                return time.time()  # pandia: lint-ok[PD-DET] epoch timestamp wanted
            """,
            rules=["PD-DET"],
        )
        assert findings == []

    def test_pragma_on_another_line_does_not_suppress(self, lint_snippet):
        findings = lint_snippet(
            """
            import time

            # pandia: lint-ok[PD-DET] comment on the wrong line
            def stamp():
                return time.time()
            """,
            rules=["PD-DET"],
        )
        assert _ids(findings) == ["PD-DET"]
