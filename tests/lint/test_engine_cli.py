"""Engine orchestration and the ``pandia lint`` command."""

import json
import textwrap

import pytest

from repro import obs
from repro.cli import main
from repro.errors import LintError
from repro.lint import Baseline, rule_ids, run_lint, select_rules
from repro.lint.engine import iter_python_files


CLEAN = """\
def double(x):
    return 2 * x
"""

DIRTY = """\
import time

def stamp():
    return time.time()
"""


def _write_tree(tmp_path):
    package = tmp_path / "pkg"
    package.mkdir()
    (package / "__init__.py").write_text("")
    (package / "clean.py").write_text(CLEAN)
    (package / "dirty.py").write_text(DIRTY)
    return package


class TestEngine:
    def test_directory_walk_is_sorted_and_skips_pycache(self, tmp_path):
        package = _write_tree(tmp_path)
        cache = package / "__pycache__"
        cache.mkdir()
        (cache / "clean.cpython-311.py").write_text(CLEAN)
        files = iter_python_files([str(package)])
        assert [f.rsplit("/", 1)[-1] for f in files] == [
            "__init__.py", "clean.py", "dirty.py",
        ]

    def test_missing_path_raises_naming_it(self):
        with pytest.raises(LintError, match="no/such/dir"):
            iter_python_files(["no/such/dir"])

    def test_select_restricts_rules(self, tmp_path):
        package = _write_tree(tmp_path)
        report = run_lint([str(package)], select=["PD-FLOAT"])
        assert report.rules == ["PD-FLOAT"]
        assert report.new == []  # time.time is PD-DET's business

    def test_unknown_rule_id_raises(self):
        with pytest.raises(LintError, match="PD-BOGUS"):
            select_rules(["PD-BOGUS"])

    def test_report_shape_and_counts(self, tmp_path):
        package = _write_tree(tmp_path)
        report = run_lint([str(package)])
        assert report.files_scanned == 3
        assert not report.ok
        assert [f.rule_id for f in report.new] == ["PD-DET"]
        payload = report.to_dict()
        assert payload["ok"] is False
        assert payload["files_scanned"] == 3
        assert payload["new"][0]["rule"] == "PD-DET"
        assert payload["new"][0]["line"] == 4

    def test_obs_counters_emitted_when_enabled(self, tmp_path):
        package = _write_tree(tmp_path)
        obs.enable()
        obs.reset()
        try:
            run_lint([str(package)])
            counters = obs.metrics().data()["counters"]
            spans = [s.name for s in obs.tracer().spans()]
        finally:
            obs.disable()
            obs.reset()
        assert counters["lint.files"] == 3
        assert counters["lint.findings.PD-DET"] == 1
        assert "lint.run" in spans

    def test_obs_stays_silent_when_disabled(self, tmp_path):
        package = _write_tree(tmp_path)
        obs.reset()
        run_lint([str(package)])
        assert obs.metrics().data()["counters"] == {}


class TestCli:
    def test_exit_one_on_new_findings(self, tmp_path, capsys):
        package = _write_tree(tmp_path)
        code = main(["lint", str(package), "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 1
        assert "PD-DET" in out
        assert "1 new finding" in out

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        package = _write_tree(tmp_path)
        code = main([
            "lint", str(package / "clean.py"), "--no-baseline",
        ])
        assert code == 0
        assert "0 new findings" in capsys.readouterr().out

    def test_json_format_is_the_report_dict(self, tmp_path, capsys):
        package = _write_tree(tmp_path)
        code = main(["lint", str(package), "--no-baseline", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["ok"] is False
        assert payload["rules"] == sorted(rule_ids())
        assert payload["new"][0]["rule"] == "PD-DET"

    def test_select_flag_splits_commas(self, tmp_path, capsys):
        package = _write_tree(tmp_path)
        code = main([
            "lint", str(package), "--no-baseline",
            "--select", "PD-FLOAT,PD-GOLD",
        ])
        assert code == 0
        assert "2 rules" in capsys.readouterr().out

    def test_write_baseline_then_clean_then_expire(self, tmp_path, capsys, monkeypatch):
        package = _write_tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        baseline = str(tmp_path / "baseline.json")

        # Accept the current debt.
        assert main(["lint", "pkg", "--baseline", baseline,
                     "--write-baseline"]) == 0
        assert "1 accepted finding" in capsys.readouterr().out

        # Same findings, now baselined: clean exit.
        assert main(["lint", "pkg", "--baseline", baseline]) == 0
        out = capsys.readouterr().out
        assert "0 new findings, 1 baselined" in out

        # Fix the file: the baseline entry goes stale but still exits 0.
        (package / "dirty.py").write_text(
            textwrap.dedent(
                """\
                import time

                def stamp():
                    return time.perf_counter()
                """
            )
        )
        assert main(["lint", "pkg", "--baseline", baseline]) == 0
        assert "stale" in capsys.readouterr().out

        # Regenerating drops the stale entry.
        assert main(["lint", "pkg", "--baseline", baseline,
                     "--write-baseline"]) == 0
        assert Baseline.load(baseline).counts == {}

    def test_pragma_suppression_is_counted(self, tmp_path, capsys):
        snippet = tmp_path / "snippet.py"
        snippet.write_text(
            "import time\n"
            "\n"
            "def stamp():\n"
            "    return time.time()"
            "  # pandia: lint-ok[PD-DET] wall-clock is the point here\n"
        )
        code = main(["lint", str(snippet), "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 suppressed" in out
