"""PD-OBS fixtures: span lifetimes, hoisted branches, namespaces."""


def _ids(findings):
    return [f.rule_id for f in findings]


class TestSpanContextManager:
    def test_bare_span_call_is_flagged(self, lint_snippet):
        findings = lint_snippet(
            """
            from repro import obs

            def leak():
                span = obs.span("search.evaluate")
                return span
            """,
            rules=["PD-OBS"],
        )
        assert _ids(findings) == ["PD-OBS"]
        assert findings[0].line == 5
        assert "never finished" in findings[0].message

    def test_with_span_passes(self, lint_snippet):
        findings = lint_snippet(
            """
            from repro import obs

            def traced():
                with obs.span("search.evaluate") as span:
                    if span is not None:
                        span.attrs["n"] = 1
            """,
            rules=["PD-OBS"],
        )
        assert findings == []


class TestHoistedBranch:
    def test_enabled_inside_loop_is_flagged(self, lint_snippet):
        findings = lint_snippet(
            """
            from repro import obs

            def hot(rows):
                for row in rows:
                    if obs.enabled():
                        obs.metrics().counter("sim.rows").inc()
            """,
            rules=["PD-OBS"],
        )
        assert "PD-OBS" in _ids(findings)
        assert any("hoist" in (f.suggestion or "") for f in findings)

    def test_hoisted_enabled_passes(self, lint_snippet):
        findings = lint_snippet(
            """
            from repro import obs

            def hot(rows):
                obs_on = obs.enabled()
                counter = obs.metrics().counter("sim.rows") if obs_on else None
                for row in rows:
                    if counter is not None:
                        counter.inc()
            """,
            rules=["PD-OBS"],
        )
        assert findings == []

    def test_function_inside_loop_body_is_its_own_scope(self, lint_snippet):
        # A def inside a loop resets the loop context: the call happens
        # at call time, not once per loop iteration at definition time.
        findings = lint_snippet(
            """
            from repro import obs

            def build(rows):
                handlers = []
                for row in rows:
                    def probe():
                        return obs.enabled()
                    handlers.append(probe)
                return handlers
            """,
            rules=["PD-OBS"],
        )
        assert findings == []


class TestMetricNamespaces:
    def test_unnamespaced_counter_is_flagged(self, lint_snippet):
        findings = lint_snippet(
            """
            from repro import obs

            def record():
                obs.metrics().counter("evaluations").inc()
            """,
            rules=["PD-OBS"],
        )
        assert _ids(findings) == ["PD-OBS"]
        assert "registered namespaces" in findings[0].message

    def test_unknown_namespace_is_flagged(self, lint_snippet):
        findings = lint_snippet(
            """
            from repro import obs

            def record():
                obs.metrics().counter("scheduler.decisions").inc()
            """,
            rules=["PD-OBS"],
        )
        assert _ids(findings) == ["PD-OBS"]

    def test_aliased_registry_fstring_prefix_is_checked(self, lint_snippet):
        findings = lint_snippet(
            """
            from repro import obs

            def record(name):
                registry = obs.metrics()
                registry.counter(f"bogus.{name}").inc()
            """,
            rules=["PD-OBS"],
        )
        assert _ids(findings) == ["PD-OBS"]

    def test_namespaced_names_pass_everywhere(self, lint_snippet):
        findings = lint_snippet(
            """
            from repro import obs

            class Stats:
                def __init__(self, metrics):
                    self.metrics = metrics

                def bump(self, name):
                    self.metrics.counter(f"search.{name}").inc()

            def record():
                registry = obs.metrics()
                registry.histogram("predictor.iterations").observe(3)
                registry.counter("lint.files").inc()
            """,
            rules=["PD-OBS"],
        )
        assert findings == []

    def test_dynamic_names_are_not_guessed_at(self, lint_snippet):
        findings = lint_snippet(
            """
            from repro import obs

            def record(name):
                obs.metrics().counter(name).inc()
            """,
            rules=["PD-OBS"],
        )
        assert findings == []

    def test_unnamespaced_series_name_is_flagged(self, lint_snippet):
        findings = lint_snippet(
            """
            from repro.obs.timeseries import TimeSeriesRecorder

            def record(registry):
                recorder = TimeSeriesRecorder(registry)
                recorder.series("depth").append(0.0, 1.0)
            """,
            rules=["PD-OBS"],
        )
        assert _ids(findings) == ["PD-OBS"]
        assert "time-series name" in findings[0].message

    def test_namespaced_series_name_passes(self, lint_snippet):
        findings = lint_snippet(
            """
            from repro.obs.timeseries import TimeSeriesRecorder

            def record(registry):
                recorder = TimeSeriesRecorder(registry)
                recorder.series("online.queue_depth").append(0.0, 1.0)
            """,
            rules=["PD-OBS"],
        )
        assert findings == []

    def test_chained_recorder_series_call_is_checked(self, lint_snippet):
        findings = lint_snippet(
            """
            from repro.obs.timeseries import TimeSeriesRecorder

            def record(registry):
                return TimeSeriesRecorder(registry).series("depth")
            """,
            rules=["PD-OBS"],
        )
        assert _ids(findings) == ["PD-OBS"]

    def test_non_recorder_series_method_is_ignored(self, lint_snippet):
        findings = lint_snippet(
            """
            def record(frame):
                return frame.series("anything goes")
            """,
            rules=["PD-OBS"],
        )
        assert findings == []


class TestRecorderInLoop:
    def test_recorder_constructed_in_loop_is_flagged(self, lint_snippet):
        findings = lint_snippet(
            """
            from repro.obs.timeseries import TimeSeriesRecorder

            def sample_all(registries):
                out = []
                for registry in registries:
                    out.append(TimeSeriesRecorder(registry))
                return out
            """,
            rules=["PD-OBS"],
        )
        assert _ids(findings) == ["PD-OBS"]
        assert "inside a loop" in findings[0].message

    def test_recorder_outside_loop_passes(self, lint_snippet):
        findings = lint_snippet(
            """
            from repro.obs.timeseries import TimeSeriesRecorder

            def sample_all(registry, times):
                recorder = TimeSeriesRecorder(registry)
                for t in times:
                    recorder.sample_at(t)
                return recorder
            """,
            rules=["PD-OBS"],
        )
        assert findings == []


class TestPragma:
    def test_pragma_suppresses_an_experimental_namespace(self, lint_snippet):
        findings = lint_snippet(
            """
            from repro import obs

            def record():
                obs.metrics().counter("scratch.run").inc()  # pandia: lint-ok[PD-OBS] throwaway probe
            """,
            rules=["PD-OBS"],
        )
        assert findings == []
