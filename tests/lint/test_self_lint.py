"""The self-lint gate: the codebase passes its own linter.

This is the acceptance criterion for the whole subsystem — ``pandia
lint src/repro`` must exit clean against the committed baseline.  Run
from the repository root because baseline keys embed repo-relative
paths.
"""

import os

import pytest

from repro.lint import Baseline, DEFAULT_BASELINE_NAME, run_lint

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


@pytest.fixture(autouse=True)
def _at_repo_root(monkeypatch):
    monkeypatch.chdir(REPO_ROOT)


class TestSelfLint:
    def test_src_repro_is_clean_against_committed_baseline(self):
        baseline = Baseline.load(DEFAULT_BASELINE_NAME)
        report = run_lint(["src/repro"], baseline=baseline)
        assert report.new == [], "\n".join(str(f) for f in report.new)
        assert report.ok

    def test_committed_baseline_has_no_stale_entries(self):
        baseline = Baseline.load(DEFAULT_BASELINE_NAME)
        report = run_lint(["src/repro"], baseline=baseline)
        assert report.expired == []

    def test_determinism_rule_needs_no_baseline_in_src(self):
        # Satellite guarantee: PD-DET ships with an empty exception list.
        report = run_lint(["src/repro"], select=["PD-DET"])
        assert report.new == [], "\n".join(str(f) for f in report.new)

    def test_golden_purity_needs_no_baseline_in_src(self):
        report = run_lint(["src/repro"], select=["PD-GOLD"])
        assert report.new == []

    def test_tests_directory_parses_cleanly(self):
        # The linter must at least traverse the test tree without
        # crashing (fixture snippets live in docstrings/strings here).
        report = run_lint(["tests/lint"], select=["PD-PRAGMA"])
        assert report.files_scanned > 5
