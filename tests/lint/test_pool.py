"""PD-POOL fixtures: pool-submitted work is self-contained."""


def _ids(findings):
    return [f.rule_id for f in findings]


class TestSharedStateWrites:
    def test_global_write_in_submitted_function_is_flagged(self, lint_snippet):
        findings = lint_snippet(
            """
            TOTALS = 0

            def work(x):
                global TOTALS
                TOTALS += x
                return x

            def fan_out(pool, items):
                return [pool.submit(work, x) for x in items]
            """,
            rules=["PD-POOL"],
        )
        assert _ids(findings) == ["PD-POOL"]
        assert findings[0].line == 5
        assert "global" in findings[0].message

    def test_module_container_mutation_is_flagged(self, lint_snippet):
        findings = lint_snippet(
            """
            CACHE = {}

            def work(key):
                CACHE[key] = key * 2
                return key

            def fan_out(pool, keys):
                return pool.map(work, keys)
            """,
            rules=["PD-POOL"],
        )
        assert _ids(findings) == ["PD-POOL"]
        assert "CACHE" in findings[0].message

    def test_nonlocal_rebind_is_flagged(self, lint_snippet):
        findings = lint_snippet(
            """
            def driver(pool, items):
                count = 0

                def work(x):
                    nonlocal count
                    count += 1
                    return x

                return [pool.submit(work, x) for x in items]
            """,
            rules=["PD-POOL"],
        )
        assert _ids(findings) == ["PD-POOL"]
        assert "closure" in findings[0].message

    def test_pure_submitted_function_passes(self, lint_snippet):
        findings = lint_snippet(
            """
            LIMIT = 10

            def work(x):
                local = {}
                local[x] = x * LIMIT  # reading module state is fine
                return local

            def fan_out(pool, items):
                return [pool.submit(work, x) for x in items]
            """,
            rules=["PD-POOL"],
        )
        assert findings == []

    def test_initializer_global_is_sanctioned(self, lint_snippet):
        # The per-process initializer is the documented home for
        # worker-global setup (the search engine's predictor rebuild).
        findings = lint_snippet(
            """
            from concurrent.futures import ProcessPoolExecutor

            _PREDICTOR = None

            def _init(md):
                global _PREDICTOR
                _PREDICTOR = md

            def work(x):
                return _PREDICTOR, x

            def fan_out(md, items):
                with ProcessPoolExecutor(initializer=_init, initargs=(md,)) as pool:
                    return [pool.submit(work, x) for x in items]
            """,
            rules=["PD-POOL"],
        )
        assert findings == []


class TestPicklability:
    def test_submitted_lambda_is_flagged(self, lint_snippet):
        findings = lint_snippet(
            """
            def fan_out(pool, items):
                return [pool.submit(lambda x: x + 1, x) for x in items]
            """,
            rules=["PD-POOL"],
        )
        assert _ids(findings) == ["PD-POOL"]
        assert "lambda" in findings[0].message

    def test_lambda_argument_is_flagged(self, lint_snippet):
        findings = lint_snippet(
            """
            def work(fn):
                return fn(1)

            def fan_out(pool):
                return pool.submit(work, lambda x: x + 1)
            """,
            rules=["PD-POOL"],
        )
        assert _ids(findings) == ["PD-POOL"]

    def test_generator_argument_is_flagged(self, lint_snippet):
        findings = lint_snippet(
            """
            def work(rows):
                return sum(rows)

            def fan_out(pool, items):
                return pool.submit(work, (x * 2 for x in items))
            """,
            rules=["PD-POOL"],
        )
        assert _ids(findings) == ["PD-POOL"]
        assert "generator" in findings[0].message

    def test_pragma_suppresses_thread_only_lambda(self, lint_snippet):
        findings = lint_snippet(
            """
            def fan_out(pool, items):
                return [
                    pool.submit(lambda x: x + 1, x)  # pandia: lint-ok[PD-POOL] thread pool only, never processes
                    for x in items
                ]
            """,
            rules=["PD-POOL"],
        )
        assert findings == []
