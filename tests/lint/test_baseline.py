"""Baseline semantics: accept, count, expire, round-trip."""

import pytest

from repro.errors import LintError
from repro.lint.baseline import Baseline
from repro.lint.findings import Finding


def _finding(message="m", path="src/a.py", line=3, rule="PD-ERR"):
    return Finding(
        rule_id=rule, severity="warning", path=path, line=line, col=0,
        message=message,
    )


class TestPartition:
    def test_baselined_findings_do_not_fail(self):
        finding = _finding()
        baseline = Baseline.from_findings([finding])
        new, baselined, expired = baseline.partition([finding])
        assert new == []
        assert baselined == [finding]
        assert expired == []

    def test_line_moves_still_match(self):
        baseline = Baseline.from_findings([_finding(line=3)])
        new, baselined, expired = baseline.partition([_finding(line=300)])
        assert new == []
        assert len(baselined) == 1
        assert expired == []

    def test_extra_identical_finding_is_new(self):
        # One baseline slot, two identical findings: the second is new.
        baseline = Baseline.from_findings([_finding()])
        new, baselined, _ = baseline.partition([_finding(), _finding(line=9)])
        assert len(baselined) == 1
        assert len(new) == 1

    def test_fixed_finding_expires_its_entry(self):
        baseline = Baseline.from_findings([_finding(message="gone")])
        new, baselined, expired = baseline.partition([_finding(message="still here")])
        assert len(new) == 1
        assert baselined == []
        assert expired == ["PD-ERR::src/a.py::gone"]


class TestRoundTrip:
    def test_save_load_preserves_counts(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        findings = [_finding(), _finding(line=8), _finding(message="other")]
        Baseline.from_findings(findings).save(path)
        loaded = Baseline.load(path)
        new, baselined, expired = loaded.partition(findings)
        assert new == []
        assert len(baselined) == 3
        assert expired == []

    def test_add_then_expire_round_trip(self, tmp_path):
        # add: a new finding is written into the regenerated baseline;
        # expire: once fixed, regenerating drops its entry.
        path = str(tmp_path / "baseline.json")
        first, second = _finding(message="first"), _finding(message="second")
        Baseline.from_findings([first, second]).save(path)

        new, baselined, expired = Baseline.load(path).partition([first])
        assert new == [] and len(baselined) == 1
        assert expired == ["PD-ERR::src/a.py::second"]

        Baseline.from_findings(baselined).save(path)
        reloaded = Baseline.load(path)
        assert reloaded.counts == {"PD-ERR::src/a.py::first": 1}

    def test_missing_file_is_an_empty_baseline(self, tmp_path):
        baseline = Baseline.load(str(tmp_path / "absent.json"))
        assert baseline.counts == {}

    def test_malformed_file_raises_naming_the_path(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("[]")
        with pytest.raises(LintError, match="broken.json"):
            Baseline.load(str(path))

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text('{"version": 99, "entries": []}')
        with pytest.raises(LintError, match="version"):
            Baseline.load(str(path))
