"""Shared fixtures: machines, descriptions, and canned workloads.

Machine and workload descriptions are expensive enough to share; they
are deterministic (fixed noise seeds), so session scope is safe.
"""

from __future__ import annotations

import pytest

from repro.core.description import DemandVector, WorkloadDescription
from repro.core.machine_desc import MachineDescription, generate_machine_description
from repro.core.predictor import PandiaPredictor
from repro.core.workload_desc import WorkloadDescriptionGenerator
from repro.hardware import machines
from repro.hardware.topology import MachineTopology
from repro.sim.noise import NO_NOISE, NoiseModel
from repro.workloads import catalog


@pytest.fixture(scope="session")
def testbox():
    """Small 2-socket machine: fast enough for exhaustive tests."""
    return machines.get("TESTBOX")


@pytest.fixture(scope="session")
def fig3():
    """The paper's Figure-3 toy machine."""
    return machines.get("FIG3")


@pytest.fixture(scope="session")
def x5():
    return machines.get("X5-2")


@pytest.fixture(scope="session")
def x3():
    return machines.get("X3-2")


@pytest.fixture(scope="session")
def testbox_md(testbox):
    """Measured machine description of TESTBOX (no noise)."""
    return generate_machine_description(testbox, noise=NO_NOISE)


@pytest.fixture(scope="session")
def testbox_gen(testbox, testbox_md):
    return WorkloadDescriptionGenerator(testbox, testbox_md, noise=NO_NOISE)


@pytest.fixture(scope="session")
def testbox_predictor(testbox_md):
    return PandiaPredictor(testbox_md)


@pytest.fixture(scope="session")
def x3_md(x3):
    return generate_machine_description(x3, noise=NoiseModel(sigma=0.01))


@pytest.fixture(scope="session")
def fig3_description():
    """MachineDescription matching the paper's worked example (Figure 3)."""
    topo = MachineTopology(n_sockets=2, cores_per_socket=2, threads_per_core=2)
    return MachineDescription(
        machine_name="FIG3",
        topology=topo,
        core_rate=10.0,
        core_rate_smt=10.0,
        dram_bw_per_node=100.0,
        interconnect_bw=50.0,
    )


@pytest.fixture(scope="session")
def example_workload():
    """WorkloadDescription of the paper's worked example (Figure 4)."""
    return WorkloadDescription(
        name="example",
        machine_name="FIG3",
        t1=1000.0,
        demands=DemandVector(inst_rate=7.0, dram_bw=80.0),
        parallel_fraction=0.9,
        inter_socket_overhead=0.1,
        load_balance=0.5,
        burstiness=0.5,
    )


@pytest.fixture(scope="session")
def md_spec():
    """The MD molecular-dynamics workload spec (paper Figure 1)."""
    return catalog.get("MD")


@pytest.fixture(scope="session")
def cg_spec():
    return catalog.get("CG")
