"""Predictor behaviour on a 4-socket machine (multi-link interconnect)."""

import pytest

from repro.core.description import DemandVector, WorkloadDescription
from repro.core.machine_desc import MachineDescription
from repro.core.placement import Placement
from repro.core.predictor import PandiaPredictor
from repro.hardware.topology import MachineTopology


@pytest.fixture(scope="module")
def md4():
    topo = MachineTopology(n_sockets=4, cores_per_socket=2, threads_per_core=1)
    return MachineDescription(
        machine_name="quad",
        topology=topo,
        core_rate=10.0,
        core_rate_smt=10.0,
        dram_bw_per_node=100.0,
        interconnect_bw=50.0,
    )


def make_workload(**overrides):
    base = dict(
        name="quad-w",
        machine_name="quad",
        t1=100.0,
        demands=DemandVector(inst_rate=5.0, dram_bw=40.0),
        parallel_fraction=0.99,
    )
    base.update(overrides)
    return WorkloadDescription(**base)


class TestMultiLinkStructure:
    def test_four_socket_placement_loads_pairwise_links(self, md4):
        wd = make_workload()
        # One thread per socket: cores 0, 2, 4, 6.
        placement = Placement(md4.topology, (0, 2, 4, 6))
        pred = PandiaPredictor(md4).predict(wd, placement)
        link_keys = [k for k in pred.resource_loads if k[0] == "link"]
        # Every thread reaches the three remote nodes: all six links load.
        assert len(link_keys) == 6

    def test_two_socket_subset_loads_one_link(self, md4):
        wd = make_workload()
        placement = Placement(md4.topology, (0, 2))  # sockets 0 and 1
        pred = PandiaPredictor(md4).predict(wd, placement)
        link_keys = [k for k in pred.resource_loads if k[0] == "link"]
        assert link_keys == [("link", (0, 1))]

    def test_links_share_traffic_evenly_for_symmetric_placement(self, md4):
        wd = make_workload()
        placement = Placement(md4.topology, (0, 2, 4, 6))
        pred = PandiaPredictor(md4).predict(wd, placement)
        loads = [v for k, v in pred.resource_loads.items() if k[0] == "link"]
        assert max(loads) == pytest.approx(min(loads), rel=1e-9)

    def test_spreading_relieves_dram_but_loads_links(self, md4):
        """The paper's whole trade-off in one assertion: one socket
        saturates its node; four sockets spread DRAM but pay the links."""
        wd = make_workload(demands=DemandVector(inst_rate=5.0, dram_bw=80.0))
        predictor = PandiaPredictor(md4)
        packed = predictor.predict(wd, Placement(md4.topology, (0, 1)))
        spread = predictor.predict(wd, Placement(md4.topology, (0, 2)))
        packed_util = packed.resource_utilisation()
        spread_util = spread.resource_utilisation()
        assert packed_util[("dram", 0)] > spread_util[("dram", 0)]
        assert ("link", (0, 1)) in spread_util

    def test_bottleneck_identification(self, md4):
        wd = make_workload(demands=DemandVector(inst_rate=5.0, dram_bw=80.0))
        pred = PandiaPredictor(md4).predict(wd, Placement(md4.topology, (0, 2)))
        kind, _ = pred.bottleneck()
        assert kind in ("link", "dram")
