"""Tests for placements and canonical enumeration."""

import pytest

from repro.core.placement import (
    Placement,
    count_canonical,
    enumerate_canonical,
    from_shapes,
    sample_canonical,
)
from repro.errors import PlacementError
from repro.hardware.topology import MachineTopology


@pytest.fixture
def topo():
    return MachineTopology(2, 4, 2)  # TESTBOX shape


class TestPlacement:
    def test_basic_structure(self, topo):
        p = Placement(topo, (0, 8, 5))  # 0 and 8 share core 0; 5 on socket 1
        assert p.n_threads == 3
        assert p.threads_per_core() == {0: 2, 5: 1}
        assert p.active_sockets() == (0, 1)

    def test_socket_shapes(self, topo):
        p = Placement(topo, (0, 8, 1, 5))
        assert p.socket_shapes() == ((1, 1), (1, 0))

    def test_canonical_key_mirrors_sockets(self, topo):
        left = Placement(topo, (0, 1))  # two cores on socket 0
        right = Placement(topo, (4, 5))  # two cores on socket 1
        assert left.canonical_key() == right.canonical_key()

    def test_sort_key_orders_by_total_then_cores(self, topo):
        one = Placement(topo, (0,))
        two = Placement(topo, (0, 1))
        assert one.sort_key() < two.sort_key()

    def test_rejects_duplicate_context(self, topo):
        with pytest.raises(PlacementError):
            Placement(topo, (0, 0))

    def test_rejects_empty(self, topo):
        with pytest.raises(PlacementError):
            Placement(topo, ())

    def test_rejects_unknown_context(self, topo):
        with pytest.raises(PlacementError):
            Placement(topo, (16,))

    def test_str_is_informative(self, topo):
        text = str(Placement(topo, (0, 8, 5)))
        assert "3 threads" in text


class TestFromShapes:
    def test_builds_requested_shape(self, topo):
        p = from_shapes(topo, [(2, 1), (1, 0)])
        assert p.socket_shapes() == ((2, 1), (1, 0))
        assert p.n_threads == 2 + 2 * 1 + 1

    def test_rejects_overflow(self, topo):
        with pytest.raises(PlacementError):
            from_shapes(topo, [(3, 2), (0, 0)])  # 5 cores on a 4-core socket

    def test_rejects_wrong_socket_count(self, topo):
        with pytest.raises(PlacementError):
            from_shapes(topo, [(1, 0)])

    def test_rejects_smt_on_single_thread_machine(self):
        topo1 = MachineTopology(1, 4, 1)
        with pytest.raises(PlacementError):
            from_shapes(topo1, [(0, 1)])


class TestEnumeration:
    def test_count_matches_formula(self, topo):
        # per-socket options: ones+twos <= 4 -> 15; unordered pairs with
        # repetition = 15*16/2 = 120, minus the empty-empty combo.
        assert count_canonical(topo) == 120 - 1

    def test_enumeration_is_sorted_and_unique(self, topo):
        placements = enumerate_canonical(topo)
        keys = [p.sort_key() for p in placements]
        assert keys == sorted(keys)
        canon = {p.canonical_key() for p in placements}
        assert len(canon) == len(placements)

    def test_covers_all_thread_counts(self, topo):
        counts = {p.n_threads for p in enumerate_canonical(topo)}
        assert counts == set(range(1, topo.n_hw_threads + 1))

    def test_max_threads_filter(self, topo):
        placements = enumerate_canonical(topo, max_threads=4)
        assert all(p.n_threads <= 4 for p in placements)

    def test_max_sockets_filter(self):
        topo4 = MachineTopology(4, 2, 2)
        placements = enumerate_canonical(topo4, max_sockets=2)
        assert all(len(p.active_sockets()) <= 2 for p in placements)
        assert placements  # non-empty

    def test_max_cores_filter(self, topo):
        placements = enumerate_canonical(topo, max_cores=2)
        assert all(len(p.threads_per_core()) <= 2 for p in placements)

    def test_x3_2_shape_count_is_exhaustive_scale(self):
        """The paper exhaustively tested the 8-core/socket machines;
        canonically that is (45*46/2 - 1) = 1034 distinct shapes."""
        topo = MachineTopology(2, 8, 2)
        assert count_canonical(topo) == 45 * 46 // 2 - 1


class TestSampling:
    def test_sample_is_deterministic(self, topo):
        a = sample_canonical(topo, 20, seed=3)
        b = sample_canonical(topo, 20, seed=3)
        assert [p.hw_thread_ids for p in a] == [p.hw_thread_ids for p in b]

    def test_sample_size_respected(self, topo):
        assert len(sample_canonical(topo, 20, seed=0)) == 20

    def test_small_space_returns_everything(self, topo):
        assert len(sample_canonical(topo, 10_000)) == count_canonical(topo)

    def test_different_seeds_differ(self, topo):
        a = sample_canonical(topo, 20, seed=1)
        b = sample_canonical(topo, 20, seed=2)
        assert [p.hw_thread_ids for p in a] != [p.hw_thread_ids for p in b]

    def test_rejects_non_positive_count(self, topo):
        with pytest.raises(PlacementError):
            sample_canonical(topo, 0)
