"""Tests for machine descriptions and their stressor-based generator."""

import pytest

from repro.core.machine_desc import (
    MachineDescription,
    describe,
    generate_machine_description,
)
from repro.errors import ModelError
from repro.hardware import machines
from repro.hardware.topology import MachineTopology
from repro.sim.noise import NO_NOISE, NoiseModel


class TestDataclass:
    def test_core_capacity_switches_on_occupancy(self, fig3_description):
        assert fig3_description.core_capacity(1) == 10.0
        assert fig3_description.core_capacity(2) == 10.0

    def test_rejects_smt_below_single(self):
        with pytest.raises(ModelError):
            MachineDescription(
                machine_name="bad",
                topology=MachineTopology(1, 1, 2),
                core_rate=10.0,
                core_rate_smt=8.0,
                dram_bw_per_node=100.0,
            )

    def test_multi_socket_needs_interconnect(self):
        with pytest.raises(ModelError):
            MachineDescription(
                machine_name="bad",
                topology=MachineTopology(2, 1, 1),
                core_rate=10.0,
                core_rate_smt=10.0,
                dram_bw_per_node=100.0,
                interconnect_bw=0.0,
            )

    def test_summary_mentions_everything(self, testbox_md):
        text = testbox_md.summary()
        for token in ("core rate", "L1", "L3", "DRAM", "interconnect"):
            assert token in text


class TestGeneratedDescription:
    """Measured values must recover the machine's true capacities."""

    def test_core_rate_is_all_core_turbo_issue(self, testbox, testbox_md):
        expected = testbox.ipc_single * testbox.turbo.all_core_turbo_ghz
        assert testbox_md.core_rate == pytest.approx(expected, rel=0.01)

    def test_smt_aggregate_reflects_throughput_factor(self, testbox, testbox_md):
        assert testbox_md.core_rate_smt == pytest.approx(
            testbox_md.core_rate * testbox.smt_throughput_factor, rel=0.02
        )

    def test_cache_links_measured_per_level(self, testbox, testbox_md):
        freq = testbox.turbo.all_core_turbo_ghz
        for level in testbox.caches:
            assert testbox_md.cache_link_bw[level.name] == pytest.approx(
                level.link_gbs(freq), rel=0.02
            )

    def test_llc_aggregate_measured(self, testbox, testbox_md):
        assert testbox_md.cache_agg_bw["L3"] == pytest.approx(
            testbox.cache("L3").aggregate_gbs, rel=0.02
        )

    def test_dram_bandwidth_measured(self, testbox, testbox_md):
        assert testbox_md.dram_bw_per_node == pytest.approx(
            testbox.dram_gbs_per_node, rel=0.02
        )

    def test_interconnect_measured(self, testbox, testbox_md):
        assert testbox_md.interconnect_bw == pytest.approx(
            testbox.interconnect_gbs, rel=0.02
        )

    def test_private_caches_have_no_aggregate(self, testbox_md):
        assert "L1" not in testbox_md.cache_agg_bw
        assert "L2" not in testbox_md.cache_agg_bw

    def test_noise_perturbs_measurements(self, testbox, testbox_md):
        noisy = generate_machine_description(testbox, noise=NoiseModel(sigma=0.02))
        assert noisy.core_rate != testbox_md.core_rate
        assert abs(noisy.core_rate / testbox_md.core_rate - 1) < 0.05


class TestX5Description:
    def test_x5_topology_preserved(self):
        md = generate_machine_description(machines.get("X5-2"), noise=NO_NOISE)
        assert md.topology.n_hw_threads == 72
        assert md.machine_name == "X5-2"


class TestDescribeCache:
    def test_describe_returns_same_object(self, testbox):
        a = describe(testbox, noise=NoiseModel(sigma=0.01, seed=42))
        b = describe(testbox, noise=NoiseModel(sigma=0.01, seed=42))
        assert a is b

    def test_distinct_seeds_not_shared(self, testbox):
        a = describe(testbox, noise=NoiseModel(sigma=0.01, seed=42))
        b = describe(testbox, noise=NoiseModel(sigma=0.01, seed=43))
        assert a is not b
