"""Tests for partial (online) workload descriptions (Section 8).

A runtime system integrating Pandia cannot wait for all six profiling
runs; ``generate_partial`` produces usable descriptions from the first
few steps and must actually skip the un-needed runs.
"""

import pytest

from repro.core.placement import Placement
from repro.errors import ProfilingError
from repro.workloads.spec import WorkloadSpec


@pytest.fixture(scope="module")
def spec():
    return WorkloadSpec(
        name="partial-unit", work_ginstr=80.0, cpi=0.5, l1_bpi=6.0,
        l2_bpi=2.0, l3_bpi=1.0, dram_bpi=1.5, working_set_mib=8.0,
        parallel_fraction=0.98, load_balance=0.3, burst_duty=0.8,
        comm_fraction=0.004,
    )


class TestRunCounts:
    @pytest.mark.parametrize("steps,expected_runs", [(1, 1), (2, 2), (3, 3), (4, 5), (5, 6)])
    def test_only_needed_runs_execute(self, testbox_gen, spec, steps, expected_runs):
        wd = testbox_gen.generate_partial(spec, steps)
        assert len(wd.runs) == expected_runs

    def test_partial_is_cheaper(self, testbox_gen, spec):
        early = testbox_gen.generate_partial(spec, 2)
        full = testbox_gen.generate(spec)
        assert early.profiling_cost_s < full.profiling_cost_s

    def test_rejects_bad_step(self, testbox_gen, spec):
        with pytest.raises(ProfilingError):
            testbox_gen.generate_partial(spec, 0)
        with pytest.raises(ProfilingError):
            testbox_gen.generate_partial(spec, 6)


class TestNeutralDefaults:
    def test_step1_has_neutral_parameters(self, testbox_gen, spec):
        wd = testbox_gen.generate_partial(spec, 1)
        assert wd.parallel_fraction == 1.0
        assert wd.inter_socket_overhead == 0.0
        assert wd.load_balance == 1.0
        assert wd.burstiness == 0.0

    def test_step3_measures_p_and_os_only(self, testbox_gen, spec):
        wd = testbox_gen.generate_partial(spec, 3)
        assert wd.parallel_fraction < 1.0
        assert wd.load_balance == 1.0
        assert wd.burstiness == 0.0

    def test_steps_share_measured_prefix(self, testbox_gen, spec):
        early = testbox_gen.generate_partial(spec, 2)
        full = testbox_gen.generate(spec)
        assert early.t1 == full.t1
        assert early.parallel_fraction == full.parallel_fraction


class TestPredictiveValue:
    def test_step2_description_predicts_scaling_direction(
        self, testbox, testbox_gen, testbox_predictor, spec
    ):
        """Even a two-run description must rank an obviously better
        placement above an obviously worse one."""
        wd = testbox_gen.generate_partial(spec, 2)
        topo = testbox.topology
        two = Placement(topo, (0, 1))
        six = Placement(topo, (0, 1, 2, 3, 4, 5))
        t_two = testbox_predictor.predict(wd, two).predicted_time_s
        t_six = testbox_predictor.predict(wd, six).predicted_time_s
        assert t_six < t_two
