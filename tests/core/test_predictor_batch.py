"""The batched prediction kernel against the scalar golden reference.

``predict_batch`` stacks a whole placement population into padded
arrays and runs the fixed point as masked NumPy operations; the scalar
``predict`` loop stays the golden reference it must match to 1e-12.
These tests drive the kernel over arbitrary mixed-thread-count
populations (hypothesis), the non-convergence path, degenerate inputs,
the demand-template cache, and the zero-capacity guard.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.description import DemandVector, WorkloadDescription
from repro.core.machine_desc import MachineDescription
from repro.core.placement import Placement, enumerate_canonical
from repro.core.predictor import PandiaPredictor, Prediction, _ThreadDemands
from repro.errors import PredictionError
from repro.hardware.topology import MachineTopology

TOPO = MachineTopology(2, 2, 2)
ALL_PLACEMENTS = enumerate_canonical(TOPO)
TOLERANCE = 1e-12


def make_md():
    return MachineDescription(
        machine_name="batch-prop",
        topology=TOPO,
        core_rate=10.0,
        core_rate_smt=12.0,
        cache_link_bw={"L1": 40.0},
        dram_bw_per_node=100.0,
        interconnect_bw=50.0,
    )


workloads = st.builds(
    lambda inst, l1, dram, p, os_, l, b: WorkloadDescription(
        name="batch-prop",
        machine_name="batch-prop",
        t1=100.0,
        demands=DemandVector(inst_rate=inst, cache_bw={"L1": l1}, dram_bw=dram),
        parallel_fraction=p,
        inter_socket_overhead=os_,
        load_balance=l,
        burstiness=b,
    ),
    inst=st.floats(0.5, 10.0),
    l1=st.floats(0.0, 50.0),
    dram=st.floats(0.0, 120.0),
    p=st.floats(0.5, 1.0),
    os_=st.floats(0.0, 0.2),
    l=st.floats(0.0, 1.0),
    b=st.floats(0.0, 1.0),
)

#: A population: any non-empty multiset of canonical placements, so
#: thread counts are mixed and duplicates exercise identical rows.
populations = st.lists(
    st.integers(min_value=0, max_value=len(ALL_PLACEMENTS) - 1),
    min_size=1,
    max_size=12,
)


def assert_prediction_close(ours: Prediction, ref: Prediction, ctx: str) -> None:
    assert ours.iterations == ref.iterations, ctx
    assert ours.converged is ref.converged, ctx
    assert abs(ours.predicted_time_s - ref.predicted_time_s) <= TOLERANCE, ctx
    assert abs(ours.speedup - ref.speedup) <= TOLERANCE, ctx
    assert abs(ours.amdahl - ref.amdahl) <= TOLERANCE, ctx
    assert len(ours.slowdowns) == len(ref.slowdowns), ctx
    for a, b in zip(ours.slowdowns, ref.slowdowns):
        assert abs(a - b) <= TOLERANCE, ctx
    for a, b in zip(ours.utilisations, ref.utilisations):
        assert abs(a - b) <= TOLERANCE, ctx
    assert ours.resource_capacities == ref.resource_capacities, ctx
    assert ours.resource_loads.keys() == ref.resource_loads.keys(), ctx
    for key, load in ref.resource_loads.items():
        assert abs(ours.resource_loads[key] - load) <= 1e-9, (ctx, key)


class TestBatchEqualsScalar:
    @settings(max_examples=60, deadline=None)
    @given(workload=workloads, indices=populations)
    def test_arbitrary_population_matches_scalar(self, workload, indices):
        predictor = PandiaPredictor(make_md())
        placements = [ALL_PLACEMENTS[i] for i in indices]
        batched = predictor.predict_batch(workload, placements)
        assert len(batched) == len(placements)
        for placement, ours in zip(placements, batched):
            ref = predictor.predict(workload, placement)
            assert_prediction_close(ours, ref, str(placement.hw_thread_ids))

    @settings(max_examples=30, deadline=None)
    @given(workload=workloads, index=st.integers(0, len(ALL_PLACEMENTS) - 1))
    def test_singleton_population(self, workload, index):
        predictor = PandiaPredictor(make_md())
        placement = ALL_PLACEMENTS[index]
        (ours,) = predictor.predict_batch(workload, [placement])
        ref = predictor.predict(workload, placement)
        assert_prediction_close(ours, ref, str(placement.hw_thread_ids))

    def test_empty_population(self):
        predictor = PandiaPredictor(make_md())
        assert predictor.predict_batch(_fixed_workload(), []) == []

    def test_population_larger_than_chunk(self):
        """Populations above BATCH_CHUNK split into multiple kernels."""
        from repro.core.predictor import BATCH_CHUNK

        predictor = PandiaPredictor(make_md())
        workload = _fixed_workload()
        placements = [
            ALL_PLACEMENTS[i % len(ALL_PLACEMENTS)] for i in range(BATCH_CHUNK + 3)
        ]
        batched = predictor.predict_batch(workload, placements)
        assert len(batched) == len(placements)
        # Duplicate placements must produce identical predictions.
        ref = predictor.predict(workload, placements[0])
        assert_prediction_close(batched[0], ref, "chunk head")
        assert_prediction_close(
            batched[len(ALL_PLACEMENTS)], ref, "same placement, later chunk"
        )


def _fixed_workload(**overrides):
    fields = dict(
        name="batch-fixed",
        machine_name="batch-prop",
        t1=100.0,
        demands=DemandVector(
            inst_rate=8.0, cache_bw={"L1": 30.0}, dram_bw=90.0
        ),
        parallel_fraction=0.95,
        inter_socket_overhead=0.05,
        load_balance=0.5,
        burstiness=0.5,
    )
    fields.update(overrides)
    return WorkloadDescription(**fields)


class TestNonConvergence:
    """A fixed point pinned to exhaust ``max_iterations``."""

    @pytest.mark.parametrize("max_iterations", [1, 3, 7])
    def test_pinned_iterations_agree(self, max_iterations):
        # tolerance=0.0 means |delta| < 0 never holds: the loop must
        # run to max_iterations and report non-convergence.
        predictor = PandiaPredictor(
            make_md(), max_iterations=max_iterations, tolerance=0.0
        )
        workload = _fixed_workload()
        placements = [p for p in ALL_PLACEMENTS if p.n_threads >= 2][:6]
        batched = predictor.predict_batch(workload, placements)
        for placement, ours in zip(placements, batched):
            ref = predictor.predict(workload, placement)
            assert ref.converged is False
            assert ref.iterations == max_iterations
            assert ours.converged is False
            assert ours.iterations == max_iterations
            assert_prediction_close(ours, ref, str(placement.hw_thread_ids))

    def test_mixed_convergence_population(self):
        """Rows that converge drop out while stragglers iterate on."""
        predictor = PandiaPredictor(make_md())
        # A single thread converges in few iterations; contended
        # many-thread placements take more — the active-set path.
        easy = _fixed_workload(demands=DemandVector(inst_rate=1.0))
        placements = sorted(ALL_PLACEMENTS, key=lambda p: p.n_threads)
        batched = predictor.predict_batch(easy, placements)
        iteration_counts = {b.iterations for b in batched}
        assert len(iteration_counts) > 1, "population should converge unevenly"
        for placement, ours in zip(placements, batched):
            ref = predictor.predict(easy, placement)
            assert_prediction_close(ours, ref, str(placement.hw_thread_ids))


class TestDemandTemplateCache:
    def test_templates_reused_across_calls(self):
        predictor = PandiaPredictor(make_md())
        workload = _fixed_workload()
        predictor.predict(workload, ALL_PLACEMENTS[0])
        assert len(predictor._templates) == 1
        predictor.predict(workload, ALL_PLACEMENTS[1])
        predictor.predict_batch(workload, ALL_PLACEMENTS[:4])
        assert len(predictor._templates) == 1, "same demands => one template"
        other = _fixed_workload(
            demands=DemandVector(inst_rate=2.0, cache_bw={"L1": 1.0}, dram_bw=1.0)
        )
        predictor.predict(other, ALL_PLACEMENTS[0])
        assert len(predictor._templates) == 2, "new demands => new template"

    def test_shared_core_mask_is_public(self):
        md = make_md()
        workload = _fixed_workload()
        packed = Placement(TOPO, (0, 4))  # both SMT contexts of core 0
        spread = Placement(TOPO, (0, 1))  # one context on each of two cores
        assert _ThreadDemands(md, workload, packed).shared_core_mask.all()
        assert not _ThreadDemands(md, workload, spread).shared_core_mask.any()


class TestZeroCapacityGuard:
    def _prediction(self, loads, capacities):
        return Prediction(
            workload_name="w",
            machine_name="m",
            placement=ALL_PLACEMENTS[0],
            amdahl=1.0,
            speedup=1.0,
            predicted_time_s=1.0,
            slowdowns=(1.0,),
            utilisations=(1.0,),
            iterations=1,
            converged=True,
            resource_loads=loads,
            resource_capacities=capacities,
        )

    def test_zero_capacity_raises_named_error(self):
        key = ("dram", 0)
        prediction = self._prediction({key: 5.0}, {key: 0.0})
        with pytest.raises(PredictionError, match=r"\('dram', 0\).*zero capacity"):
            prediction.resource_utilisation()
        with pytest.raises(PredictionError, match="zero capacity"):
            prediction.bottleneck()

    def test_missing_capacity_raises_named_error(self):
        key = ("core", 3)
        prediction = self._prediction({key: 5.0}, {})
        with pytest.raises(PredictionError, match="zero capacity"):
            prediction.resource_utilisation()

    def test_nonzero_capacities_pass(self):
        key = ("core", 0)
        prediction = self._prediction({key: 5.0}, {key: 10.0})
        assert prediction.resource_utilisation() == {key: 0.5}
        assert prediction.bottleneck() == key
