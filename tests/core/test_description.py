"""Tests for the workload-description data model."""

import pytest

from repro.core.description import DemandVector, RunRecord, WorkloadDescription
from repro.errors import ModelError


def make_description(**overrides):
    base = dict(
        name="w",
        machine_name="TESTBOX",
        t1=10.0,
        demands=DemandVector(inst_rate=5.0, cache_bw={"L1": 20.0}, dram_bw=4.0),
        parallel_fraction=0.95,
        inter_socket_overhead=0.01,
        load_balance=0.4,
        burstiness=0.2,
    )
    base.update(overrides)
    return WorkloadDescription(**base)


class TestDemandVector:
    def test_rejects_non_positive_rate(self):
        with pytest.raises(ModelError):
            DemandVector(inst_rate=0.0)

    def test_rejects_negative_bandwidths(self):
        with pytest.raises(ModelError):
            DemandVector(inst_rate=1.0, dram_bw=-1.0)
        with pytest.raises(ModelError):
            DemandVector(inst_rate=1.0, cache_bw={"L1": -1.0})


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("t1", 0.0),
            ("parallel_fraction", 1.2),
            ("load_balance", -0.1),
            ("inter_socket_overhead", -0.01),
            ("burstiness", -0.5),
        ],
    )
    def test_rejects_out_of_range(self, field, value):
        with pytest.raises(ModelError):
            make_description(**{field: value})


class TestPartial:
    def test_partial_step1_neutralises_everything(self):
        wd = make_description()
        partial = wd.partial(1)
        assert partial.parallel_fraction == 1.0
        assert partial.inter_socket_overhead == 0.0
        assert partial.load_balance == 1.0
        assert partial.burstiness == 0.0

    def test_partial_step3_keeps_p_and_os(self):
        wd = make_description()
        partial = wd.partial(3)
        assert partial.parallel_fraction == wd.parallel_fraction
        assert partial.inter_socket_overhead == wd.inter_socket_overhead
        assert partial.load_balance == 1.0
        assert partial.burstiness == 0.0

    def test_partial_step5_is_identity(self):
        wd = make_description()
        assert wd.partial(5) == wd

    def test_rejects_bad_step(self):
        with pytest.raises(ModelError):
            make_description().partial(0)


class TestProfilingCost:
    def test_sums_run_times(self):
        runs = (
            RunRecord("run1", 1, 10.0, 1.0, 1.0, 1.0),
            RunRecord("run2", 4, 3.0, 0.3, 1.0, 0.3),
        )
        wd = make_description(runs=runs)
        assert wd.profiling_cost_s == pytest.approx(13.0)

    def test_summary_contains_parameters(self):
        text = make_description().summary()
        for token in ("t1", "parallel fraction", "load balance", "burstiness"):
            assert token in text
