"""Tests for heterogeneous thread groups (paper Section 6.4)."""

import pytest

from repro.core.groups import (
    GroupedPredictor,
    GroupedWorkloadDescription,
    profile_grouped,
)
from repro.core.placement import Placement
from repro.errors import ModelError, SimulationError
from repro.sim.grouped import GroupedWorkloadSpec, master_worker, run_grouped
from repro.sim.noise import NO_NOISE, NoiseModel
from repro.workloads.spec import WorkloadSpec


@pytest.fixture(scope="module")
def worker_spec():
    return WorkloadSpec(
        name="grouped-base", work_ginstr=80.0, cpi=0.5, l1_bpi=6.0, l2_bpi=2.0,
        l3_bpi=1.0, dram_bpi=1.5, working_set_mib=8.0,
        parallel_fraction=0.99, load_balance=0.7, burst_duty=0.9,
    )


@pytest.fixture(scope="module")
def grouped_spec(worker_spec):
    return master_worker("mw", worker_spec, master_fraction=0.05)


class TestGroupedSpec:
    def test_master_worker_shape(self, grouped_spec, worker_spec):
        assert grouped_spec.labels == ("master", "workers")
        master = grouped_spec.group("master")
        workers = grouped_spec.group("workers")
        assert master.parallel_fraction == 0.0
        assert master.work_ginstr == pytest.approx(worker_spec.work_ginstr * 0.05)
        assert workers.work_ginstr == pytest.approx(worker_spec.work_ginstr * 0.95)

    def test_duplicate_labels_rejected(self, worker_spec):
        with pytest.raises(SimulationError, match="duplicate"):
            GroupedWorkloadSpec("x", (("a", worker_spec), ("a", worker_spec)))

    def test_unknown_group_lookup(self, grouped_spec):
        with pytest.raises(SimulationError, match="no group"):
            grouped_spec.group("ghost")

    def test_master_fraction_validated(self, worker_spec):
        with pytest.raises(SimulationError):
            master_worker("x", worker_spec, master_fraction=1.5)


class TestGroupedExecution:
    def test_completion_is_slowest_group(self, testbox, grouped_spec):
        run = run_grouped(
            testbox,
            grouped_spec,
            {"master": (0,), "workers": (1, 2, 3)},
            noise=NO_NOISE,
        )
        assert run.elapsed_s == max(run.group_times.values())
        assert set(run.group_times) == {"master", "workers"}

    def test_missing_placement_rejected(self, testbox, grouped_spec):
        with pytest.raises(SimulationError, match="without placements"):
            run_grouped(testbox, grouped_spec, {"master": (0,)}, noise=NO_NOISE)

    def test_extra_placement_rejected(self, testbox, grouped_spec):
        with pytest.raises(SimulationError, match="unknown groups"):
            run_grouped(
                testbox,
                grouped_spec,
                {"master": (0,), "workers": (1,), "ghost": (2,)},
                noise=NO_NOISE,
            )

    def test_more_workers_speed_up_worker_bound_workload(self, testbox, grouped_spec):
        few = run_grouped(
            testbox, grouped_spec, {"master": (0,), "workers": (1, 2)}, noise=NO_NOISE
        )
        many = run_grouped(
            testbox,
            grouped_spec,
            {"master": (0,), "workers": (1, 2, 3, 4, 5, 6)},
            noise=NO_NOISE,
        )
        assert many.elapsed_s < few.elapsed_s

    def test_master_eventually_becomes_the_bottleneck(self, testbox, worker_spec):
        """Adding workers stops helping once the serial master gates."""
        grouped = master_worker("mw-heavy", worker_spec, master_fraction=0.3)
        many = run_grouped(
            testbox,
            grouped,
            {"master": (0,), "workers": tuple(range(1, 8))},
            noise=NO_NOISE,
        )
        assert many.group_time("master") > many.group_time("workers")
        assert many.elapsed_s == many.group_time("master")


class TestGroupedProfilingAndPrediction:
    @pytest.fixture(scope="class")
    def grouped_description(self, request, grouped_spec):
        generator = request.getfixturevalue("testbox_gen")
        return profile_grouped(generator, grouped_spec)

    def test_per_group_descriptions(self, grouped_description):
        master = grouped_description.group("master")
        workers = grouped_description.group("workers")
        assert master.parallel_fraction < 0.2  # serial master detected
        assert workers.parallel_fraction > 0.9

    def test_prediction_tracks_simulation(
        self, testbox, testbox_md, grouped_spec, grouped_description
    ):
        predictor = GroupedPredictor(testbox_md)
        topo = testbox.topology
        placements = {
            "master": Placement(topo, (0,)),
            "workers": Placement(topo, (1, 2, 3, 4, 5)),
        }
        prediction = predictor.predict(grouped_description, placements)
        run = run_grouped(
            testbox,
            grouped_spec,
            {label: p.hw_thread_ids for label, p in placements.items()},
            noise=NoiseModel(sigma=0.01),
        )
        assert prediction.predicted_time_s == pytest.approx(run.elapsed_s, rel=0.35)

    def test_prediction_validates_placements(self, testbox_md, grouped_description, testbox):
        predictor = GroupedPredictor(testbox_md)
        with pytest.raises(ModelError, match="without placements"):
            predictor.predict(
                grouped_description,
                {"master": Placement(testbox.topology, (0,))},
            )

    def test_duplicate_group_description_rejected(self, grouped_description):
        master = grouped_description.group("master")
        with pytest.raises(ModelError, match="duplicate"):
            GroupedWorkloadDescription("x", (("a", master), ("a", master)))
