"""Invariants of the profiling run records (the k/u bookkeeping).

Section 4.1 defines ``r_x = t_x/t1`` and ``u_x = r_x/k_x``; the
RunRecords the generator emits must satisfy those identities exactly,
and the layering conditions the paper imposes on each step must hold.
"""

import pytest

from repro.workloads.spec import WorkloadSpec


@pytest.fixture(scope="module")
def description(request):
    generator = request.getfixturevalue("testbox_gen")
    spec = WorkloadSpec(
        name="records-unit", work_ginstr=80.0, cpi=0.5, l1_bpi=6.0,
        l2_bpi=2.0, l3_bpi=1.0, dram_bpi=1.5, working_set_mib=8.0,
        parallel_fraction=0.98, load_balance=0.3, burst_duty=0.85,
        comm_fraction=0.004, numa_local_fraction=0.6,
    )
    return generator.generate(spec)


class TestIdentities:
    def test_relative_times_are_anchored_to_run1(self, description):
        t1 = description.t1
        for record in description.runs:
            assert record.relative_time == pytest.approx(
                record.elapsed_s / t1, rel=1e-9
            ), record.label

    def test_unknown_factor_identity(self, description):
        for record in description.runs:
            assert record.unknown_factor == pytest.approx(
                record.relative_time / record.known_factor, rel=1e-9
            ), record.label

    def test_run1_is_the_unit(self, description):
        run1 = description.runs[0]
        assert (run1.relative_time, run1.known_factor, run1.unknown_factor) == (
            1.0,
            1.0,
            1.0,
        )


class TestLayering:
    """Each step's placement conditions (Section 4)."""

    def test_runs_2_through_5_share_a_thread_count(self, description):
        counts = {r.n_threads for r in description.runs[1:]}
        assert len(counts) == 1  # the even n2, reused everywhere

    def test_run2_known_factor_is_one(self, description):
        """Run 2 is constructed to avoid all contention: k2 = 1."""
        run2 = next(r for r in description.runs if r.label == "run2")
        assert run2.known_factor == 1.0

    def test_run2_shows_speedup(self, description):
        run2 = next(r for r in description.runs if r.label == "run2")
        assert run2.relative_time < 1.0

    def test_perturbed_runs_are_slower_than_run2(self, description):
        """Runs 4 and 5 add stressors to Run 2's placement; Run 6 packs
        the same threads — all three must cost time."""
        by_label = {r.label: r for r in description.runs}
        for label in ("run4", "run5", "run6"):
            assert by_label[label].elapsed_s > by_label["run2"].elapsed_s, label

    def test_run4_hurts_at_least_as_much_as_run5(self, description):
        """Slowing every thread costs at least as much as slowing one."""
        by_label = {r.label: r for r in description.runs}
        assert by_label["run4"].elapsed_s >= by_label["run5"].elapsed_s

    def test_known_factors_come_from_the_partial_model(self, description):
        """Runs 3 and 6 carry k from Pandia's partial predictions —
        close to the measured r (the model explains most of each run)."""
        by_label = {r.label: r for r in description.runs}
        for label in ("run3", "run6"):
            record = by_label[label]
            assert record.known_factor != 1.0
            assert record.unknown_factor == pytest.approx(1.0, abs=0.35)
