"""Behavioural tests for the performance predictor."""

import pytest

from repro.core.description import DemandVector, WorkloadDescription
from repro.core.placement import Placement, from_shapes
from repro.core.predictor import PandiaPredictor
from repro.errors import PredictionError


@pytest.fixture
def predictor(fig3_description):
    return PandiaPredictor(fig3_description)


def make_workload(**overrides):
    base = dict(
        name="w",
        machine_name="FIG3",
        t1=100.0,
        demands=DemandVector(inst_rate=5.0, dram_bw=10.0),
        parallel_fraction=0.95,
        inter_socket_overhead=0.0,
        load_balance=1.0,
        burstiness=0.0,
    )
    base.update(overrides)
    return WorkloadDescription(**base)


class TestSingleThread:
    def test_uncontended_single_thread_runs_at_t1(self, predictor, fig3_description):
        wd = make_workload()
        pl = Placement(fig3_description.topology, (0,))
        pred = predictor.predict(wd, pl)
        assert pred.speedup == pytest.approx(1.0)
        assert pred.predicted_time_s == pytest.approx(wd.t1)
        assert pred.slowdowns == (1.0,)

    def test_utilisation_is_one_for_perfect_run(self, predictor, fig3_description):
        wd = make_workload(parallel_fraction=1.0)
        pred = predictor.predict(wd, Placement(fig3_description.topology, (0,)))
        assert pred.utilisations == (pytest.approx(1.0),)


class TestScalingBehaviour:
    def test_uncontended_scaling_follows_amdahl(self, predictor, fig3_description):
        wd = make_workload(parallel_fraction=0.9, demands=DemandVector(inst_rate=2.0, dram_bw=4.0))
        topo = fig3_description.topology
        pred = predictor.predict(wd, Placement(topo, (0, 1)))
        assert pred.speedup == pytest.approx(pred.amdahl, rel=1e-3)

    def test_core_contention_halves_shared_threads(self, predictor, fig3_description):
        # Two threads of 7 instr demand on one 10-capacity core.
        wd = make_workload(
            parallel_fraction=1.0, demands=DemandVector(inst_rate=7.0, dram_bw=1.0)
        )
        topo = fig3_description.topology
        pred = predictor.predict(wd, Placement(topo, (0, 4)))  # SMT pair on core 0
        assert pred.slowdowns[0] == pytest.approx(1.4, rel=1e-3)  # 14/10

    def test_more_contention_never_speeds_up(self, predictor, fig3_description):
        wd = make_workload(parallel_fraction=1.0, demands=DemandVector(inst_rate=2.0, dram_bw=80.0))
        topo = fig3_description.topology
        t2 = predictor.predict(wd, Placement(topo, (0, 1))).predicted_time_s
        t1 = predictor.predict(wd, Placement(topo, (0,))).predicted_time_s
        # DRAM saturates at 1.6x oversubscription: speedup only 1.25.
        assert t2 == pytest.approx(t1 / 1.25, rel=1e-3)


class TestBurstiness:
    def test_burstiness_applies_only_to_shared_cores(self, predictor, fig3_description):
        wd = make_workload(burstiness=0.5, parallel_fraction=1.0)
        topo = fig3_description.topology
        shared = predictor.predict(wd, Placement(topo, (0, 4)))
        separate = predictor.predict(wd, Placement(topo, (0, 1)))
        assert max(shared.slowdowns) > max(separate.slowdowns)

    def test_zero_burstiness_is_neutral(self, fig3_description):
        wd_b0 = make_workload(burstiness=0.0, parallel_fraction=1.0,
                              demands=DemandVector(inst_rate=4.0, dram_bw=1.0))
        pred = PandiaPredictor(fig3_description).predict(
            wd_b0, Placement(fig3_description.topology, (0, 4))
        )
        # 2 x 4 = 8 < 10 capacity: no contention, no burstiness.
        assert pred.slowdowns == (pytest.approx(1.0), pytest.approx(1.0))


class TestCommunication:
    def test_cross_socket_penalty_applies(self, predictor, fig3_description):
        wd = make_workload(inter_socket_overhead=0.05, parallel_fraction=1.0,
                           demands=DemandVector(inst_rate=2.0, dram_bw=2.0))
        topo = fig3_description.topology
        same = predictor.predict(wd, Placement(topo, (0, 1)))
        split = predictor.predict(wd, Placement(topo, (0, 2)))
        assert split.predicted_time_s > same.predicted_time_s

    def test_more_remote_peers_cost_more(self, predictor, fig3_description):
        wd = make_workload(inter_socket_overhead=0.05, parallel_fraction=1.0,
                           demands=DemandVector(inst_rate=2.0, dram_bw=2.0))
        topo = fig3_description.topology
        one_remote = predictor.predict(wd, Placement(topo, (0, 1, 2)))
        two_remote = predictor.predict(wd, Placement(topo, (0, 2, 3)))
        # thread 0 faces two remote peers in the second placement
        assert two_remote.slowdowns[0] > one_remote.slowdowns[0]


class TestLoadBalancePenalty:
    def test_lockstep_drags_everyone_to_the_slowest(self, predictor, fig3_description):
        wd = make_workload(
            load_balance=0.0, parallel_fraction=1.0, burstiness=0.0,
            demands=DemandVector(inst_rate=7.0, dram_bw=1.0),
        )
        topo = fig3_description.topology
        # U, V share core 0 (slowdown 1.4); W alone on core 1.
        pred = predictor.predict(wd, Placement(topo, (0, 4, 1)))
        assert pred.slowdowns[2] == pytest.approx(max(pred.slowdowns), rel=1e-6)

    def test_work_stealing_leaves_fast_threads_fast(self, predictor, fig3_description):
        wd = make_workload(
            load_balance=1.0, parallel_fraction=1.0, burstiness=0.0,
            demands=DemandVector(inst_rate=7.0, dram_bw=1.0),
        )
        topo = fig3_description.topology
        pred = predictor.predict(wd, Placement(topo, (0, 4, 1)))
        assert pred.slowdowns[2] < max(pred.slowdowns)


class TestIterationMechanics:
    def test_slowdowns_bounded_by_first_iteration(self, predictor, example_workload, fig3_description):
        pred = predictor.predict(
            example_workload, Placement(fig3_description.topology, (0, 4, 2)),
            keep_trace=True,
        )
        cap = max(pred.trace[0].overall_slowdown)
        for it in pred.trace:
            assert max(it.overall_slowdown) <= cap + 1e-9
            assert min(it.overall_slowdown) >= 1.0 - 1e-9

    def test_trace_disabled_by_default(self, predictor, example_workload, fig3_description):
        pred = predictor.predict(
            example_workload, Placement(fig3_description.topology, (0, 4, 2))
        )
        assert pred.trace == []

    def test_zero_iterations_rejected(self, fig3_description):
        with pytest.raises(PredictionError):
            PandiaPredictor(fig3_description, max_iterations=0)

    def test_prediction_is_deterministic(self, predictor, example_workload, fig3_description):
        pl = Placement(fig3_description.topology, (0, 4, 2))
        a = predictor.predict(example_workload, pl)
        b = predictor.predict(example_workload, pl)
        assert a.speedup == b.speedup
        assert a.slowdowns == b.slowdowns


class TestCacheLevels:
    """Predictions on a machine description with a cache hierarchy."""

    def test_cache_link_contention(self, testbox_md):
        wd = WorkloadDescription(
            name="cachey",
            machine_name="TESTBOX",
            t1=50.0,
            demands=DemandVector(
                inst_rate=2.0,
                cache_bw={"L3": testbox_md.cache_link_bw["L3"] * 0.8},
                dram_bw=0.5,
            ),
            parallel_fraction=1.0,
        )
        topo = testbox_md.topology
        predictor = PandiaPredictor(testbox_md)
        shared = predictor.predict(wd, from_shapes(topo, [(0, 1), (0, 0)]))
        split = predictor.predict(wd, from_shapes(topo, [(2, 0), (0, 0)]))
        # Two threads on one core oversubscribe its L3 link 1.6x.
        assert max(shared.slowdowns) > max(split.slowdowns)

    def test_llc_aggregate_contention(self, testbox_md):
        per_core = testbox_md.cache_agg_bw["L3"] / 4  # socket has 4 cores
        wd = WorkloadDescription(
            name="aggy",
            machine_name="TESTBOX",
            t1=50.0,
            demands=DemandVector(
                inst_rate=1.0, cache_bw={"L3": per_core * 1.5}, dram_bw=0.0
            ),
            parallel_fraction=1.0,
        )
        topo = testbox_md.topology
        predictor = PandiaPredictor(testbox_md)
        one_socket = predictor.predict(wd, from_shapes(topo, [(4, 0), (0, 0)]))
        two_socket = predictor.predict(wd, from_shapes(topo, [(2, 0), (2, 0)]))
        assert one_socket.predicted_time_s > two_socket.predicted_time_s
