"""Tests for the six-run workload-description generator."""

import pytest

from repro.core.description import DemandVector
from repro.core.placement import Placement
from repro.core.workload_desc import WorkloadDescriptionGenerator, max_oversubscription
from repro.errors import ProfilingError
from repro.sim.noise import NO_NOISE
from repro.workloads.spec import WorkloadSpec


def make_spec(**overrides):
    base = dict(
        name="unit",
        work_ginstr=80.0,
        cpi=0.5,
        l1_bpi=6.0,
        l2_bpi=2.0,
        l3_bpi=1.0,
        dram_bpi=1.5,
        working_set_mib=4.0,
        parallel_fraction=0.98,
        load_balance=0.3,
        burst_duty=0.8,
        comm_fraction=0.004,
    )
    base.update(overrides)
    return WorkloadSpec(**base)


@pytest.fixture(scope="module")
def generated(request):
    gen = request.getfixturevalue("testbox_gen")
    return gen.generate(make_spec())


class TestRunStructure:
    def test_six_runs_recorded(self, generated):
        labels = [r.label for r in generated.runs]
        assert labels == ["run1", "run2", "run3", "run4", "run5", "run6"]

    def test_run1_defines_the_baseline(self, generated):
        run1 = generated.runs[0]
        assert run1.n_threads == 1
        assert run1.relative_time == 1.0
        assert generated.t1 == run1.elapsed_s

    def test_run2_thread_count_is_even_single_socket(self, generated):
        assert generated.runs[1].n_threads % 2 == 0
        assert 2 <= generated.runs[1].n_threads <= 4  # TESTBOX socket size

    def test_profiling_cost_positive(self, generated):
        assert generated.profiling_cost_s > generated.t1


class TestRecoveredParameters:
    def test_demand_vector_matches_solo_consumption(self, testbox, generated):
        spec = make_spec()
        # Solo rate at all-core turbo (profiling fills idle cores).
        freq = testbox.turbo.all_core_turbo_ghz
        expected_rate = min(
            freq * min(spec.ipc_demand, testbox.ipc_single),
            testbox.cache("L1").link_gbs(freq) / spec.l1_bpi,
        )
        assert generated.demands.inst_rate == pytest.approx(expected_rate, rel=0.02)
        assert generated.demands.dram_bw == pytest.approx(
            generated.demands.inst_rate * spec.dram_bpi, rel=0.02
        )

    def test_parallel_fraction_close_to_truth(self, generated):
        assert generated.parallel_fraction == pytest.approx(0.98, abs=0.02)

    def test_inter_socket_overhead_recovered(self, generated):
        assert generated.inter_socket_overhead == pytest.approx(0.004, abs=0.004)

    def test_load_balance_recovered(self, generated):
        assert generated.load_balance == pytest.approx(0.3, abs=0.25)

    def test_burstiness_positive_for_bursty_workload(self, generated):
        assert generated.burstiness > 0


class TestSpecialWorkloads:
    def test_serial_workload_yields_zero_p(self, testbox_gen):
        spec = make_spec(name="serial", parallel_fraction=0.0, active_threads=1)
        wd = testbox_gen.generate(spec)
        assert wd.parallel_fraction == pytest.approx(0.0, abs=0.02)

    def test_steady_compute_workload_has_tiny_burstiness(self, testbox_gen):
        spec = make_spec(
            name="steady", burst_duty=1.0, l1_bpi=2.0, l2_bpi=0.0, l3_bpi=0.0,
            dram_bpi=0.0, comm_fraction=0.0,
        )
        wd = testbox_gen.generate(spec)
        assert wd.burstiness < 0.15

    def test_no_communication_yields_zero_os(self, testbox_gen):
        spec = make_spec(name="local-only", comm_fraction=0.0, dram_bpi=0.2)
        wd = testbox_gen.generate(spec)
        assert wd.inter_socket_overhead == pytest.approx(0.0, abs=0.003)


class TestRun2ThreadChoice:
    def test_memory_hog_gets_few_threads(self, testbox, testbox_md, testbox_gen):
        # A workload whose solo demand eats most of a node's bandwidth.
        hog = make_spec(name="hog", dram_bpi=8.0, cpi=1.0)
        wd = testbox_gen.generate(hog)
        assert wd.runs[1].n_threads == 2

    def test_oversubscription_probe(self, testbox_md):
        demands = DemandVector(inst_rate=2.0, dram_bw=testbox_md.dram_bw_per_node / 2)
        topo = testbox_md.topology
        light = Placement(topo, (0, 1))
        heavy = Placement(topo, (0, 1, 2))
        assert max_oversubscription(testbox_md, demands, light) <= 1.0 + 1e-9
        assert max_oversubscription(testbox_md, demands, heavy) > 1.0


class TestValidation:
    def test_mismatched_machine_rejected(self, x3, testbox_md):
        with pytest.raises(ProfilingError):
            WorkloadDescriptionGenerator(x3, testbox_md, noise=NO_NOISE)

    def test_description_is_deterministic(self, testbox_gen):
        a = testbox_gen.generate(make_spec(name="det"))
        b = testbox_gen.generate(make_spec(name="det"))
        assert a.t1 == b.t1
        assert a.parallel_fraction == b.parallel_fraction
        assert a.burstiness == b.burstiness
