"""Tests for placement ranking, selection and right-sizing."""

import pytest

from repro.core.description import DemandVector, WorkloadDescription
from repro.core.optimizer import (
    best_placement,
    peak_thread_count,
    rank_placements,
    rank_placements_serial,
    rightsize,
)
from repro.core.placement import enumerate_canonical
from repro.core.predictor import PandiaPredictor
from repro.errors import PredictionError


@pytest.fixture(scope="module")
def fig3_predictor(request):
    return PandiaPredictor(request.getfixturevalue("fig3_description"))


@pytest.fixture(scope="module")
def all_placements(request):
    topo = request.getfixturevalue("fig3_description").topology
    return enumerate_canonical(topo)


def make_workload(**overrides):
    base = dict(
        name="w",
        machine_name="FIG3",
        t1=100.0,
        demands=DemandVector(inst_rate=5.0, dram_bw=10.0),
        parallel_fraction=0.95,
    )
    base.update(overrides)
    return WorkloadDescription(**base)


class TestRanking:
    def test_ranked_fastest_first(self, fig3_predictor, all_placements):
        ranked = rank_placements(fig3_predictor, make_workload(), all_placements)
        times = [r.predicted_time_s for r in ranked]
        assert times == sorted(times)
        assert len(ranked) == len(all_placements)

    def test_empty_placements_rejected(self, fig3_predictor):
        with pytest.raises(PredictionError):
            rank_placements(fig3_predictor, make_workload(), [])

    def test_empty_placements_error_names_workload_and_machine(
        self, fig3_predictor
    ):
        wd = make_workload(name="lonely")
        with pytest.raises(PredictionError, match=r"'lonely'.*FIG3"):
            rank_placements(fig3_predictor, wd, [])
        with pytest.raises(PredictionError, match=r"'lonely'.*FIG3"):
            rank_placements_serial(fig3_predictor, wd, [])


class TestBestPlacement:
    def test_scalable_workload_wants_the_whole_machine(
        self, fig3_predictor, all_placements
    ):
        wd = make_workload(
            parallel_fraction=1.0, demands=DemandVector(inst_rate=5.0, dram_bw=1.0)
        )
        placement, prediction = best_placement(fig3_predictor, wd, all_placements)
        assert placement.n_threads == 8  # 2 sockets x 2 cores x 2 threads
        assert prediction.speedup > 4

    def test_interconnect_bound_workload_stays_on_one_socket(
        self, fig3_predictor, all_placements
    ):
        # The worked-example workload: DRAM demand 80 spread over sockets
        # saturates the link; one socket avoids it entirely.
        wd = make_workload(
            parallel_fraction=0.9,
            demands=DemandVector(inst_rate=7.0, dram_bw=80.0),
            inter_socket_overhead=0.1,
            load_balance=0.5,
            burstiness=0.5,
        )
        placement, _ = best_placement(fig3_predictor, wd, all_placements)
        assert len(placement.active_sockets()) == 1

    def test_serial_workload_wants_one_thread(self, fig3_predictor, all_placements):
        wd = make_workload(parallel_fraction=0.0)
        assert peak_thread_count(fig3_predictor, wd, all_placements) == 1


class TestRightsize:
    def test_rightsizing_prefers_fewer_resources(self, fig3_predictor, all_placements):
        # Near-serial workload: extra threads buy almost nothing.
        wd = make_workload(parallel_fraction=0.2)
        placement, prediction = rightsize(
            fig3_predictor, wd, all_placements, tolerance=0.10
        )
        best, best_pred = best_placement(fig3_predictor, wd, all_placements)
        assert placement.n_threads <= best.n_threads
        assert prediction.predicted_time_s <= best_pred.predicted_time_s * 1.10 + 1e-9

    def test_zero_tolerance_returns_smallest_of_the_best(
        self, fig3_predictor, all_placements
    ):
        wd = make_workload(parallel_fraction=0.0)
        placement, _ = rightsize(fig3_predictor, wd, all_placements, tolerance=0.0)
        assert placement.n_threads == 1

    def test_negative_tolerance_rejected(self, fig3_predictor, all_placements):
        with pytest.raises(PredictionError):
            rightsize(fig3_predictor, make_workload(), all_placements, tolerance=-0.1)


class TiedPredictor:
    """Stub predictor: every placement gets exactly the same time."""

    def predict(self, workload, placement):
        from repro.core.predictor import Prediction

        return Prediction(
            workload_name=workload.name,
            machine_name="TIED",
            placement=placement,
            amdahl=1.0,
            speedup=1.0,
            predicted_time_s=5.0,
            slowdowns=(1.0,),
            utilisations=(1.0,),
            iterations=1,
            converged=True,
        )


class TestRightsizeTieBreaking:
    """With deliberately tied predictions, the footprint order decides:
    fewest threads first, then fewest occupied cores, then fewest
    active sockets."""

    @pytest.fixture(scope="class")
    def topo(self):
        from repro.hardware.topology import MachineTopology

        return MachineTopology(n_sockets=2, cores_per_socket=4, threads_per_core=2)

    def _shapes(self, topo, shapes):
        from repro.core.placement import from_shapes

        return from_shapes(topo, shapes)

    def test_fewest_threads_wins(self, topo):
        eight = self._shapes(topo, [(0, 2), (0, 2)])  # 8 threads
        four = self._shapes(topo, [(0, 2), (0, 0)])  # 4 threads
        one = self._shapes(topo, [(1, 0), (0, 0)])  # 1 thread
        winner, _ = rightsize(TiedPredictor(), make_workload(), [eight, four, one])
        assert winner == one

    def test_fewest_cores_breaks_thread_ties(self, topo):
        on_three_cores = self._shapes(topo, [(2, 1), (0, 0)])  # 4 threads, 3 cores
        on_two_cores = self._shapes(topo, [(0, 1), (0, 1)])  # 4 threads, 2 cores
        winner, _ = rightsize(
            TiedPredictor(), make_workload(), [on_three_cores, on_two_cores]
        )
        assert winner == on_two_cores

    def test_fewest_sockets_breaks_core_ties(self, topo):
        two_sockets = self._shapes(topo, [(0, 1), (0, 1)])  # 4t, 2 cores, 2 sockets
        one_socket = self._shapes(topo, [(0, 2), (0, 0)])  # 4t, 2 cores, 1 socket
        winner, _ = rightsize(
            TiedPredictor(), make_workload(), [two_sockets, one_socket]
        )
        assert winner == one_socket

    def test_full_ordering(self, topo):
        placements = [
            self._shapes(topo, [(0, 2), (0, 2)]),  # (8, 4, 2)
            self._shapes(topo, [(2, 1), (0, 0)]),  # (4, 3, 1)
            self._shapes(topo, [(0, 1), (0, 1)]),  # (4, 2, 2)
            self._shapes(topo, [(0, 2), (0, 0)]),  # (4, 2, 1)  <- winner
        ]
        winner, prediction = rightsize(TiedPredictor(), make_workload(), placements)
        assert winner == placements[-1]
        assert prediction.predicted_time_s == 5.0
