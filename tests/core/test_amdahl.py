"""Tests for the Amdahl and load-balancing arithmetic."""

import pytest

from repro.core.amdahl import (
    amdahl_relative_time,
    amdahl_speedup,
    balanced_slowdown,
    lockstep_slowdown,
    solve_load_balance,
    solve_parallel_fraction,
)
from repro.errors import ModelError


class TestSpeedup:
    def test_paper_example(self):
        """Section 5: p = 0.9, n = 3 gives speedup 2.5."""
        assert amdahl_speedup(0.9, 3) == pytest.approx(2.5)

    def test_serial_workload_never_speeds_up(self):
        assert amdahl_speedup(0.0, 64) == 1.0

    def test_fully_parallel_is_linear(self):
        assert amdahl_speedup(1.0, 8) == pytest.approx(8.0)

    def test_relative_time_is_inverse(self):
        assert amdahl_relative_time(0.9, 3) == pytest.approx(0.4)

    def test_single_thread_is_unity(self):
        assert amdahl_speedup(0.97, 1) == 1.0

    @pytest.mark.parametrize("bad_p", [-0.1, 1.1])
    def test_rejects_bad_fraction(self, bad_p):
        with pytest.raises(ModelError):
            amdahl_speedup(bad_p, 4)

    def test_rejects_zero_threads(self):
        with pytest.raises(ModelError):
            amdahl_speedup(0.5, 0)


class TestSolveParallelFraction:
    def test_round_trip(self):
        for p in (0.0, 0.5, 0.9, 0.99, 1.0):
            u2 = amdahl_relative_time(p, 6)
            assert solve_parallel_fraction(u2, 6) == pytest.approx(p, abs=1e-12)

    def test_clamps_superlinear_noise(self):
        # measured faster than perfect scaling -> p capped at 1
        assert solve_parallel_fraction(0.1, 6) == 1.0

    def test_clamps_antiscaling(self):
        # run slower with more threads -> p floored at 0
        assert solve_parallel_fraction(1.2, 6) == 0.0

    def test_needs_two_threads(self):
        with pytest.raises(ModelError):
            solve_parallel_fraction(0.5, 1)


class TestLoadBalanceExtremes:
    def test_lockstep_tracks_slowest(self):
        assert lockstep_slowdown(1.0, [1.0, 1.0, 2.0]) == pytest.approx(2.0)

    def test_balanced_tracks_aggregate(self):
        # throughputs 1 + 1 + 0.5 = 2.5 of 3 -> slowdown 3/2.5
        assert balanced_slowdown(1.0, [1.0, 1.0, 2.0]) == pytest.approx(1.2)

    def test_serial_fraction_dilutes_both(self):
        si = [1.0, 3.0]
        assert lockstep_slowdown(0.5, si) == pytest.approx(0.5 + 0.5 * 3.0)
        assert balanced_slowdown(0.5, si) < lockstep_slowdown(0.5, si)

    def test_no_slowdown_case(self):
        assert lockstep_slowdown(0.9, [1.0, 1.0]) == pytest.approx(1.0)
        assert balanced_slowdown(0.9, [1.0, 1.0]) == pytest.approx(1.0)

    def test_balanced_never_exceeds_lockstep(self):
        for sigma in (1.0, 1.5, 2.0, 10.0):
            si = [1.0] * 7 + [sigma]
            assert balanced_slowdown(0.95, si) <= lockstep_slowdown(0.95, si) + 1e-12

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            lockstep_slowdown(0.9, [])
        with pytest.raises(ModelError):
            balanced_slowdown(0.9, [])


class TestSolveLoadBalance:
    def test_endpoints(self):
        assert solve_load_balance(2.0, lockstep=2.0, balanced=1.2) == 0.0
        assert solve_load_balance(1.2, lockstep=2.0, balanced=1.2) == 1.0

    def test_midpoint(self):
        assert solve_load_balance(1.6, lockstep=2.0, balanced=1.2) == pytest.approx(0.5)

    def test_clamped_outside_range(self):
        assert solve_load_balance(2.5, lockstep=2.0, balanced=1.2) == 0.0
        assert solve_load_balance(1.0, lockstep=2.0, balanced=1.2) == 1.0

    def test_default_when_unidentifiable(self):
        assert solve_load_balance(1.0, lockstep=1.0, balanced=1.0, default=0.5) == 0.5
