"""Tests for the co-scheduling extension (paper Sections 6.3/8)."""

import pytest

from repro.core.coscheduling import (
    CoSchedulePredictor,
    CoScheduledWorkload,
)
from repro.core.description import DemandVector, WorkloadDescription
from repro.core.placement import Placement
from repro.core.predictor import PandiaPredictor
from repro.errors import PlacementError, PredictionError
from repro.hardware.topology import MachineTopology


def make_workload(name="co", inst=5.0, dram=10.0, p=0.95, **kw):
    return WorkloadDescription(
        name=name,
        machine_name="FIG3",
        t1=100.0,
        demands=DemandVector(inst_rate=inst, dram_bw=dram),
        parallel_fraction=p,
        **kw,
    )


@pytest.fixture
def co_predictor(fig3_description):
    return CoSchedulePredictor(fig3_description)


@pytest.fixture
def topo(fig3_description):
    return fig3_description.topology


class TestDegeneratesToSoloPredictor:
    def test_single_workload_matches_pandia(self, fig3_description, topo, co_predictor):
        """With one workload, co-scheduling must equal the Section-5
        predictor exactly."""
        wd = make_workload(
            inter_socket_overhead=0.05, load_balance=0.5, burstiness=0.3
        )
        placement = Placement(topo, (0, 4, 2))
        solo = PandiaPredictor(fig3_description).predict(wd, placement)
        joint = co_predictor.predict([CoScheduledWorkload(wd, placement)])
        outcome = joint.outcomes[0]
        assert outcome.speedup == pytest.approx(solo.speedup, rel=1e-9)
        assert outcome.slowdowns == pytest.approx(solo.slowdowns)


class TestInterference:
    def test_neighbour_slows_a_memory_bound_workload(self, topo, co_predictor):
        mem = make_workload("mem", inst=2.0, dram=60.0)
        noisy = make_workload("noisy", inst=2.0, dram=60.0)
        alone = co_predictor.predict(
            [CoScheduledWorkload(mem, Placement(topo, (0,)))]
        ).outcome_for("mem")
        together = co_predictor.predict(
            [
                CoScheduledWorkload(mem, Placement(topo, (0,))),
                CoScheduledWorkload(noisy, Placement(topo, (1,))),
            ]
        ).outcome_for("mem")
        assert together.predicted_time_s > alone.predicted_time_s

    def test_compute_bound_neighbours_do_not_interact(self, topo, co_predictor):
        a = make_workload("a", inst=5.0, dram=0.0)
        b = make_workload("b", inst=5.0, dram=0.0)
        alone = co_predictor.predict(
            [CoScheduledWorkload(a, Placement(topo, (0,)))]
        ).outcome_for("a")
        together = co_predictor.predict(
            [
                CoScheduledWorkload(a, Placement(topo, (0,))),
                CoScheduledWorkload(b, Placement(topo, (1,))),
            ]
        ).outcome_for("a")
        assert together.predicted_time_s == pytest.approx(alone.predicted_time_s)

    def test_cross_workload_core_sharing_uses_smt_capacity(self, topo):
        from repro.core.machine_desc import MachineDescription

        md = MachineDescription(
            machine_name="FIG3",
            topology=MachineTopology(2, 2, 2),
            core_rate=10.0,
            core_rate_smt=12.0,
            dram_bw_per_node=100.0,
            interconnect_bw=50.0,
        )
        predictor = CoSchedulePredictor(md)
        a = make_workload("a", inst=8.0, dram=0.0, p=1.0)
        b = make_workload("b", inst=8.0, dram=0.0, p=1.0)
        joint = predictor.predict(
            [
                CoScheduledWorkload(a, Placement(md.topology, (0,))),
                CoScheduledWorkload(b, Placement(md.topology, (4,))),  # same core
            ]
        )
        # Combined demand 16 against the SMT aggregate 12 -> 1.33x each.
        for outcome in joint.outcomes:
            assert outcome.slowdowns[0] == pytest.approx(16.0 / 12.0, rel=1e-6)

    def test_resource_loads_are_summed_across_workloads(self, topo, co_predictor):
        a = make_workload("a", inst=2.0, dram=20.0, p=1.0)
        b = make_workload("b", inst=2.0, dram=20.0, p=1.0)
        joint = co_predictor.predict(
            [
                CoScheduledWorkload(a, Placement(topo, (0,))),
                CoScheduledWorkload(b, Placement(topo, (1,))),
            ]
        )
        # Both workloads interleave over socket 0 only (single active
        # socket each): node 0 sees 20 + 20 at full utilisation.
        assert joint.resource_loads[("dram", 0)] == pytest.approx(40.0, rel=1e-6)


class TestValidation:
    def test_overlapping_placements_rejected(self, topo, co_predictor):
        a = make_workload("a")
        b = make_workload("b")
        with pytest.raises(PlacementError, match="claimed by workloads"):
            co_predictor.predict(
                [
                    CoScheduledWorkload(a, Placement(topo, (0, 1))),
                    CoScheduledWorkload(b, Placement(topo, (1, 2))),
                ]
            )

    def test_empty_jobs_rejected(self, co_predictor):
        with pytest.raises(PredictionError):
            co_predictor.predict([])

    def test_unknown_workload_outcome_rejected(self, topo, co_predictor):
        joint = co_predictor.predict(
            [CoScheduledWorkload(make_workload("a"), Placement(topo, (0,)))]
        )
        with pytest.raises(PredictionError):
            joint.outcome_for("zzz")


class TestAgainstSimulator:
    """The joint prediction must track the simulator's joint execution."""

    def test_two_profiled_workloads_co_running(self, testbox, testbox_gen, testbox_md):
        from repro.sim.engine import Job, SimOptions, simulate
        from repro.sim.noise import NO_NOISE
        from repro.workloads.spec import WorkloadSpec

        mem = WorkloadSpec(
            name="co-mem", work_ginstr=60.0, cpi=0.9, l1_bpi=8.0, dram_bpi=5.0,
            working_set_mib=32.0, parallel_fraction=0.99,
        )
        cpu = WorkloadSpec(
            name="co-cpu", work_ginstr=120.0, cpi=0.3, l1_bpi=3.0,
            working_set_mib=0.5, parallel_fraction=0.99,
        )
        wd_mem = testbox_gen.generate(mem)
        wd_cpu = testbox_gen.generate(cpu)
        topo = testbox.topology
        place_mem = Placement(topo, (0, 1))
        place_cpu = Placement(topo, (2, 3))

        joint = CoSchedulePredictor(testbox_md).predict(
            [
                CoScheduledWorkload(wd_mem, place_mem),
                CoScheduledWorkload(wd_cpu, place_cpu),
            ]
        )
        sim = simulate(
            testbox,
            [Job(mem, place_mem.hw_thread_ids), Job(cpu, place_cpu.hw_thread_ids)],
            SimOptions(noise=NO_NOISE),
        )
        for spec, name in ((mem, "co-mem"), (cpu, "co-cpu")):
            predicted = joint.outcome_for(name).predicted_time_s
            measured = next(
                jr.elapsed_s for jr in sim.job_results if jr.job.spec.name == name
            )
            assert predicted == pytest.approx(measured, rel=0.4)
