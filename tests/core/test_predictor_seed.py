"""Unit coverage for :class:`SeedState` and the warm scalar/batch paths.

Complements the machine × workload golden sweep in
``tests/search/test_warm_equivalence.py`` with the seed mechanics
themselves: shape-class keying, class-mean construction, mapping onto
other placements (exact, nearest-same-shared, global-mean fallbacks),
dict round-trips, and the gating surface the search engine relies on.
"""

from __future__ import annotations

import pytest

from repro.core.machine_desc import generate_machine_description
from repro.core.predictor import (
    WARM_MIN_SEED_ITERATIONS,
    PandiaPredictor,
    SeedState,
    shape_class_keys,
)
from repro.core.sweep import sweep_placements
from repro.core.workload_desc import WorkloadDescriptionGenerator
from repro.hardware import machines
from repro.sim.noise import NO_NOISE
from repro.workloads import catalog

TOLERANCE = 1e-12


@pytest.fixture(scope="module")
def testbox():
    spec = machines.get("TESTBOX")
    md = generate_machine_description(spec, noise=NO_NOISE)
    gen = WorkloadDescriptionGenerator(spec, md, noise=NO_NOISE)
    workload = gen.generate(catalog.get("MD"))
    return spec, md, workload


class TestShapeClassKeys:
    def test_one_key_per_thread(self, testbox):
        spec, _, _ = testbox
        for placement in sweep_placements(spec.topology):
            keys = shape_class_keys(placement)
            assert len(keys) == placement.n_threads

    def test_symmetric_threads_share_a_class(self, testbox):
        spec, _, _ = testbox
        placement = sweep_placements(spec.topology)[-1]
        keys = shape_class_keys(placement)
        # A full sweep placement is uniform, so every thread with the
        # same core-sharing kind lands in the same class.
        assert len(set(keys)) <= 2

    def test_shared_core_threads_distinguished(self, testbox):
        spec, _, _ = testbox
        for placement in sweep_placements(spec.topology):
            keys = shape_class_keys(placement)
            shared_flags = {key[1] for key in keys}
            per_core = placement.topology.threads_per_core_map(
                placement.hw_thread_ids
            )
            has_shared = any(v > 1 for v in per_core.values())
            assert (True in shared_flags) == has_shared


class TestSeedStateConstruction:
    def test_from_prediction(self, testbox):
        spec, md, workload = testbox
        predictor = PandiaPredictor(md)
        placement = sweep_placements(spec.topology)[-1]
        prediction = predictor.predict(workload, placement)
        seed = prediction.seed_state()
        assert seed is not None
        assert seed.iterations == prediction.iterations
        assert seed.n_threads == placement.n_threads
        # Class means average state over member threads only.
        f_arr, o_arr = seed.map_to(placement)
        for fn, ov, ref_f, ref_o in zip(
            f_arr, o_arr, prediction.final_f_norm, prediction.slowdowns
        ):
            # Uniform placements have one class, so the mean is exact.
            assert fn == pytest.approx(ref_f, abs=TOLERANCE)
            assert ov == pytest.approx(ref_o, abs=TOLERANCE)

    def test_seed_state_cached(self, testbox):
        spec, md, workload = testbox
        predictor = PandiaPredictor(md)
        placement = sweep_placements(spec.topology)[0]
        prediction = predictor.predict(workload, placement)
        assert prediction.seed_state() is prediction.seed_state()

    def test_no_final_f_norm_gives_none(self, testbox):
        spec, md, workload = testbox
        predictor = PandiaPredictor(md)
        placement = sweep_placements(spec.topology)[0]
        prediction = predictor.predict(workload, placement)
        stripped = prediction.__class__(
            **{
                **{
                    f: getattr(prediction, f)
                    for f in prediction.__dataclass_fields__
                    if prediction.__dataclass_fields__[f].init
                },
                "final_f_norm": None,
            }
        )
        assert stripped.seed_state() is None


class TestSeedStateMapping:
    def test_exact_class_match(self, testbox):
        spec, md, workload = testbox
        predictor = PandiaPredictor(md)
        sweeps = sweep_placements(spec.topology)
        seed = predictor.predict(workload, sweeps[-1]).seed_state()
        f_arr, o_arr = seed.map_to(sweeps[-1])
        assert len(f_arr) == sweeps[-1].n_threads
        assert len(o_arr) == sweeps[-1].n_threads

    def test_unknown_class_falls_back(self, testbox):
        spec, md, workload = testbox
        predictor = PandiaPredictor(md)
        sweeps = sweep_placements(spec.topology)
        # Seed from the smallest placement, map onto the largest: the
        # target's classes are absent from the seed, so mapping falls
        # back (nearest same-shared class, then global mean) but must
        # still produce one finite value pair per thread.
        seed = predictor.predict(workload, sweeps[0]).seed_state()
        target = sweeps[-1]
        f_arr, o_arr = seed.map_to(target)
        assert len(f_arr) == target.n_threads
        assert all(0.0 <= v <= 1.0 for v in f_arr)
        assert all(v >= 1.0 for v in o_arr)

    def test_empty_classes_uses_global_mean(self):
        seed = SeedState(classes=(), mean=(0.7, 3.0), iterations=10, n_threads=4)
        spec = machines.get("TESTBOX")
        placement = sweep_placements(spec.topology)[-1]
        f_arr, o_arr = seed.map_to(placement)
        assert set(float(v) for v in f_arr) == {0.7}
        assert set(float(v) for v in o_arr) == {3.0}


class TestSeedStateSerialisation:
    def test_dict_round_trip(self, testbox):
        spec, md, workload = testbox
        predictor = PandiaPredictor(md)
        placement = sweep_placements(spec.topology)[-1]
        seed = predictor.predict(workload, placement).seed_state()
        clone = SeedState.from_dict(seed.to_dict())
        assert clone == seed

    def test_round_trip_survives_json(self, testbox):
        import json

        spec, md, workload = testbox
        predictor = PandiaPredictor(md)
        placement = sweep_placements(spec.topology)[-1]
        seed = predictor.predict(workload, placement).seed_state()
        clone = SeedState.from_dict(json.loads(json.dumps(seed.to_dict())))
        assert clone == seed


class TestWarmGating:
    """The engine-facing contract: fast-converging seeds are not worth
    using (the warm floor is two iterations — cap + confirm — so a
    parent that converged in fewer than WARM_MIN_SEED_ITERATIONS can't
    be beaten)."""

    def test_min_seed_iterations_is_sane(self):
        assert WARM_MIN_SEED_ITERATIONS >= 2

    def test_warm_floor_is_two_iterations(self, testbox):
        spec, md, workload = testbox
        predictor = PandiaPredictor(md)
        placement = sweep_placements(spec.topology)[-1]
        seed = predictor.predict(workload, placement).seed_state()
        warm = predictor.predict(workload, placement, seed=seed)
        # Re-predicting the seeding placement itself: the cap iteration
        # plus the mandatory genuine confirmation step.
        assert warm.iterations >= 2
        assert warm.converged
