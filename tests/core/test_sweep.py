"""Tests for the sweep baseline (Section 6.3)."""

import pytest

from repro.core.sweep import (
    packed_placement,
    run_sweep,
    spread_placement,
    sweep_placements,
)
from repro.sim.noise import NO_NOISE
from repro.workloads.spec import WorkloadSpec


class TestPackedPlacement:
    def test_fills_smt_contexts_first(self, testbox):
        p = packed_placement(testbox.topology, 4)
        assert p.threads_per_core() == {0: 2, 1: 2}

    def test_full_machine(self, testbox):
        p = packed_placement(testbox.topology, 16)
        assert p.n_threads == 16


class TestSpreadPlacement:
    def test_alternates_sockets(self, testbox):
        p = spread_placement(testbox.topology, 4)
        shapes = p.socket_shapes()
        assert shapes == ((2, 0), (2, 0))

    def test_uses_all_cores_before_smt(self, testbox):
        p = spread_placement(testbox.topology, 9)
        counts = sorted(p.threads_per_core().values())
        assert counts == [1] * 7 + [2]


class TestSweepSet:
    def test_covers_every_thread_count(self, testbox):
        placements = sweep_placements(testbox.topology)
        counts = {p.n_threads for p in placements}
        assert counts == set(range(1, 17))

    def test_no_duplicate_shapes(self, testbox):
        placements = sweep_placements(testbox.topology)
        keys = [(p.n_threads, p.canonical_key()) for p in placements]
        assert len(keys) == len(set(keys))

    def test_roughly_two_per_thread_count(self, testbox):
        placements = sweep_placements(testbox.topology)
        # packed == spread at n = full machine; most counts give two.
        assert len(placements) > testbox.topology.n_hw_threads * 1.4


class TestRunSweep:
    def test_sweep_measures_and_totals(self, testbox):
        spec = WorkloadSpec(
            name="sweepee", work_ginstr=50.0, cpi=0.4, dram_bpi=1.0,
            parallel_fraction=0.97,
        )
        result = run_sweep(testbox, spec, noise=NO_NOISE)
        assert result.total_cost_s == pytest.approx(
            sum(t for _, t in result.timings)
        )
        best_placement, best_time = result.best
        assert best_time == min(t for _, t in result.timings)
        assert best_placement.n_threads > 1  # parallel workload benefits
