"""The paper's worked example, reproduced number for number.

Machine: Figure 3 (core rate 10, DRAM 100 per socket, interconnect 50).
Workload: Figure 4 (d = [7 instructions, 40 DRAM per socket], p = 0.9,
os = 0.1, l = 0.5, b = 0.5).
Placement: threads U and V share a core on socket 0; W runs alone on
socket 1 (Figure 7).

Assertions follow the printed tables: Figure 7(b)-(e) for the first
iteration, Figure 9(a) for the second iteration's starting state, and
the final predicted speedup of ~1.005 (Section 5.5).  Tolerances match
the two-decimal rounding of the paper's tables.
"""

import pytest

from repro.core.placement import Placement
from repro.core.predictor import PandiaPredictor


@pytest.fixture(scope="module")
def prediction(request):
    fig3_description = request.getfixturevalue("fig3_description")
    example_workload = request.getfixturevalue("example_workload")
    topo = fig3_description.topology
    # U, V = both contexts of core 0 (socket 0); W = core 2 (socket 1).
    placement = Placement(topo, (0, 4, 2))
    predictor = PandiaPredictor(fig3_description)
    return predictor.predict(example_workload, placement, keep_trace=True)


class TestSetup:
    def test_amdahl_speedup_is_2_5(self, prediction):
        assert prediction.amdahl == pytest.approx(2.5)

    def test_initial_utilisation_is_083(self, prediction):
        """Figure 7(a): threads busy 83% of the time under Amdahl."""
        it1 = prediction.trace[0]
        assert it1.start_utilisation == pytest.approx((5 / 6,) * 3)


class TestFirstIteration:
    """Figure 7(c)-(e)."""

    def test_resource_slowdowns_with_burstiness(self, prediction):
        # Interconnect oversubscribed 100/50 = 2.00 for every thread;
        # U and V add the burstiness penalty 2.00 * 0.5 * 0.83 = 0.83.
        it1 = prediction.trace[0]
        assert it1.resource_slowdown[0] == pytest.approx(2.83, abs=0.01)
        assert it1.resource_slowdown[1] == pytest.approx(2.83, abs=0.01)
        assert it1.resource_slowdown[2] == pytest.approx(2.00, abs=0.01)

    def test_communication_penalties(self, prediction):
        # Figure 7(d): +0.03 for U and V, +0.08 for W.
        it1 = prediction.trace[0]
        assert it1.comm_penalty[0] == pytest.approx(0.03, abs=0.005)
        assert it1.comm_penalty[1] == pytest.approx(0.03, abs=0.005)
        assert it1.comm_penalty[2] == pytest.approx(0.08, abs=0.005)

    def test_load_balance_drags_w_toward_the_slowest(self, prediction):
        # Figure 7(e): W moves from 2.08 to 2.48 (midpoint at l = 0.5).
        it1 = prediction.trace[0]
        assert it1.overall_slowdown[0] == pytest.approx(2.87, abs=0.01)
        assert it1.overall_slowdown[1] == pytest.approx(2.87, abs=0.01)
        assert it1.overall_slowdown[2] == pytest.approx(2.48, abs=0.01)

    def test_end_utilisations(self, prediction):
        # Figure 7(e): utilisations 0.29, 0.29, 0.34.
        it1 = prediction.trace[0]
        assert it1.end_utilisation[0] == pytest.approx(0.29, abs=0.005)
        assert it1.end_utilisation[2] == pytest.approx(0.34, abs=0.005)


class TestSecondIteration:
    """Figure 9(a): the utilisation feedback."""

    def test_starting_utilisations(self, prediction):
        # U, V reset to 0.83*0.99 = 0.82; W to 0.83*0.81 = 0.67.
        it2 = prediction.trace[1]
        assert it2.start_utilisation[0] == pytest.approx(0.82, abs=0.01)
        assert it2.start_utilisation[1] == pytest.approx(0.82, abs=0.01)
        assert it2.start_utilisation[2] == pytest.approx(0.67, abs=0.01)


class TestFinalPrediction:
    def test_speedup_close_to_paper(self, prediction):
        """Section 5.5: 'a predicted speedup of 1.005 after 4 iterations'.

        Our convergence criterion differs slightly from the authors'
        (unspecified), so allow a small band around the printed value.
        """
        assert prediction.speedup == pytest.approx(1.005, abs=0.03)

    def test_converges_in_a_few_iterations(self, prediction):
        assert prediction.converged
        assert prediction.iterations <= 10

    def test_interconnect_saturation_is_the_story(self, prediction):
        """'This extremely poor performance is primarily due to the
        inter-socket link being almost completely saturated by a single
        thread' — three threads buy almost nothing over one."""
        assert prediction.speedup < 1.1

    def test_predicted_time(self, prediction):
        assert prediction.predicted_time_s == pytest.approx(
            1000.0 / prediction.speedup
        )
