"""Tests for workload-spec fitting (the measurement-import bridge)."""

import pytest

from repro.core.sweep import spread_placement
from repro.errors import ReproError
from repro.fit import Observation, fit_workload_spec
from repro.sim.engine import Job, SimOptions, simulate
from repro.sim.noise import NO_NOISE, NoiseModel
from repro.workloads.spec import WorkloadSpec

QUIET = SimOptions(noise=NO_NOISE)


def observe(machine, spec, counts, noise=None):
    """Generate observations by timing the truth through the simulator."""
    out = []
    options = SimOptions(noise=noise) if noise else QUIET
    for n in counts:
        placement = spread_placement(machine.topology, n)
        t = simulate(machine, [Job(spec, placement.hw_thread_ids)], options)
        out.append(Observation(n, t.job_results[0].elapsed_s))
    return out


@pytest.fixture(scope="module")
def truth():
    return WorkloadSpec(
        name="truth", work_ginstr=80.0, cpi=0.7, l1_bpi=6.0, l2_bpi=2.0,
        l3_bpi=1.0, dram_bpi=3.0, working_set_mib=8.0,
        parallel_fraction=0.97, load_balance=0.4, comm_fraction=0.004,
    )


class TestRoundTrip:
    @pytest.fixture(scope="class")
    def fit(self, request, truth):
        testbox = request.getfixturevalue("testbox")
        observations = observe(testbox, truth, [1, 2, 4, 6, 8, 12, 16])
        return fit_workload_spec(testbox, observations, name="recovered")

    def test_fit_reproduces_the_curve(self, fit):
        assert fit.rms_relative_error < 0.05

    def test_anchor_is_exact(self, fit):
        assert fit.fitted_times[0] == pytest.approx(
            fit.observations[0].elapsed_s, rel=1e-6
        )

    def test_key_parameters_in_the_ballpark(self, fit, truth):
        assert fit.spec.parallel_fraction == pytest.approx(
            truth.parallel_fraction, abs=0.05
        )
        assert fit.spec.dram_bpi == pytest.approx(truth.dram_bpi, abs=1.5)

    def test_generalises_to_unseen_counts(self, fit, truth, testbox):
        # Interpolation between observed counts; the parameters are not
        # perfectly identifiable from timings alone, so allow 15%.
        for n in (3, 10, 14):
            placement = spread_placement(testbox.topology, n)
            predicted = simulate(
                testbox, [Job(fit.spec, placement.hw_thread_ids)], QUIET
            ).job_results[0].elapsed_s
            actual = simulate(
                testbox, [Job(truth, placement.hw_thread_ids)], QUIET
            ).job_results[0].elapsed_s
            assert predicted == pytest.approx(actual, rel=0.15)

    def test_table_renders(self, fit):
        text = fit.table()
        assert "observed" in text and "%" in text


class TestNoisyObservations:
    def test_fit_survives_measurement_noise(self, testbox, truth):
        observations = observe(
            testbox, truth, [1, 2, 4, 8, 16], noise=NoiseModel(sigma=0.02)
        )
        fit = fit_workload_spec(testbox, observations)
        assert fit.rms_relative_error < 0.10


class TestValidation:
    def test_needs_three_observations(self, testbox):
        with pytest.raises(ReproError, match="three"):
            fit_workload_spec(testbox, [Observation(1, 1.0), Observation(2, 0.6)])

    def test_needs_single_thread_anchor(self, testbox):
        with pytest.raises(ReproError, match="anchor"):
            fit_workload_spec(
                testbox,
                [Observation(2, 1.0), Observation(4, 0.6), Observation(8, 0.4)],
            )

    def test_rejects_duplicate_counts(self, testbox):
        with pytest.raises(ReproError, match="duplicate"):
            fit_workload_spec(
                testbox,
                [Observation(1, 1.0), Observation(2, 0.6), Observation(2, 0.61)],
            )

    def test_rejects_oversized_counts(self, testbox):
        with pytest.raises(ReproError, match="exceeds"):
            fit_workload_spec(
                testbox,
                [Observation(1, 1.0), Observation(2, 0.6), Observation(99, 0.4)],
            )

    def test_observation_validation(self):
        with pytest.raises(ReproError):
            Observation(0, 1.0)
        with pytest.raises(ReproError):
            Observation(1, 0.0)
